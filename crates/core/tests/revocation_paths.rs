//! Regression suite for the revocation paths the original code leaked
//! through: grant blobs surviving user revocation, no-op ACL revocations
//! silently rewriting metadata, stale ACL entries left behind forever, and
//! half-committed grants after a storage failure.

use std::sync::{Arc, Mutex};

use nexus_core::{
    protocol, FsckMode, NexusConfig, NexusError, NexusVolume, Rights, UserKeys, VolumeJoiner,
};
use nexus_sgx::{AttestationService, Platform};
use nexus_storage::{
    FaultAction, FaultHook, FaultPoint, IoStats, MemBackend, ObjectStat, StorageBackend,
    StorageError,
};

fn setup_on(
    backend: Arc<dyn StorageBackend>,
) -> (Platform, AttestationService, UserKeys, NexusVolume, nexus_core::SealedRootKey) {
    let platform = Platform::seeded(91);
    let ias = AttestationService::new();
    ias.register_platform(&platform);
    let owner = UserKeys::from_seed("owen", &[1u8; 32]);
    let (volume, sealed) =
        NexusVolume::create(&platform, backend, &ias, &owner, NexusConfig::default()).unwrap();
    volume.authenticate(&owner).unwrap();
    (platform, ias, owner, volume, sealed)
}

fn offer(ias: &AttestationService, backend: &Arc<MemBackend>, user: &UserKeys, machine: u64) -> VolumeJoiner {
    let platform = Platform::seeded(machine);
    ias.register_platform(&platform);
    let joiner = VolumeJoiner::new(&platform, backend.clone());
    joiner.publish_offer(user).unwrap();
    joiner
}

#[test]
fn revoked_user_cannot_extract_the_grant_afterwards() {
    let backend = Arc::new(MemBackend::new());
    let (_p, ias, owner, volume, _sealed) = setup_on(backend.clone());
    let bob = UserKeys::from_seed("bob", &[3u8; 32]);
    let joiner = offer(&ias, &backend, &bob, 1002);
    volume.grant_access(&owner, "bob", &bob.public_key()).unwrap();
    assert!(backend.exists(&protocol::grant_path("bob")));

    volume.revoke_user("bob").unwrap();

    // The wrapped-rootkey grant (and the offer it answered) are gone from
    // storage, so the revoked enclave has nothing left to extract.
    assert!(!backend.exists(&protocol::grant_path("bob")));
    assert!(!backend.exists(&protocol::offer_path("bob")));
    let err = joiner.accept_grant(&bob, &owner.public_key()).unwrap_err();
    assert!(matches!(err, NexusError::NotFound(_)), "got {err:?}");
}

#[test]
fn noop_acl_revocation_is_notfound_and_writes_nothing() {
    let backend = Arc::new(MemBackend::new());
    let (_p, ias, owner, volume, _sealed) = setup_on(backend.clone());
    volume.mkdir("docs").unwrap();
    let bob = UserKeys::from_seed("bob", &[3u8; 32]);
    offer(&ias, &backend, &bob, 1002);
    volume.grant_access(&owner, "bob", &bob.public_key()).unwrap();

    // bob is a volume user but holds no entry on docs' ACL.
    let before = volume.io_stats();
    let err = volume.revoke_acl("docs", "bob").unwrap_err();
    let delta: IoStats = volume.io_stats().delta_since(&before);
    assert!(matches!(err, NexusError::NotFound(_)), "got {err:?}");
    assert_eq!(delta.writes, 0, "no-op revocation must not rewrite metadata: {delta:?}");

    // Unknown principals surface the same way.
    assert!(matches!(volume.revoke_acl("docs", "nobody"), Err(NexusError::NotFound(_))));
}

#[test]
fn revoking_a_user_sweeps_their_acl_entries_everywhere() {
    let backend = Arc::new(MemBackend::new());
    let (platform, ias, owner, volume, sealed) = setup_on(backend.clone());
    volume.mkdir("a").unwrap();
    volume.mkdir("a/b").unwrap();
    let bob = UserKeys::from_seed("bob", &[3u8; 32]);
    let carol = UserKeys::from_seed("carol", &[4u8; 32]);
    offer(&ias, &backend, &bob, 1002);
    offer(&ias, &backend, &carol, 1003);
    volume.grant_access(&owner, "bob", &bob.public_key()).unwrap();
    volume.grant_access(&owner, "carol", &carol.public_key()).unwrap();
    volume.set_acl("a", "bob", Rights::RW).unwrap();
    volume.set_acl("a", "carol", Rights::READ).unwrap();
    volume.set_acl("a/b", "bob", Rights::RW).unwrap();

    volume.revoke_user("bob").unwrap();

    // No tombstones: bob's entries are gone from every dirnode, carol's
    // survive untouched, and fsck sees a fully consistent principal set.
    assert_eq!(volume.acl_entries("a").unwrap(), vec![("carol".to_string(), Rights::READ)]);
    assert_eq!(volume.acl_entries("a/b").unwrap(), vec![]);
    let report = volume.fsck(FsckMode::Metadata).unwrap();
    assert!(report.is_clean(), "{:?}", report.errors);
    assert!(report.findings.is_empty(), "{:?}", report.findings);

    // Manufacture the pre-fix failure mode — an ACL naming a principal the
    // supernode no longer knows — by rolling the supernode back to before
    // dave existed (his ACL entry on a/b stays behind on the fork).
    let sup_name = volume.volume_id().object_name();
    let old_supernode = backend.get(&sup_name).unwrap();
    let dave = UserKeys::from_seed("dave", &[5u8; 32]);
    offer(&ias, &backend, &dave, 1004);
    volume.grant_access(&owner, "dave", &dave.public_key()).unwrap();
    volume.set_acl("a/b", "dave", Rights::RW).unwrap();
    backend.put(&sup_name, &old_supernode).unwrap();

    let forked =
        NexusVolume::mount(&platform, backend.clone(), &ias, &sealed, NexusConfig::default())
            .unwrap();
    forked.authenticate(&owner).unwrap();
    let report = forked.fsck(FsckMode::Metadata).unwrap();
    assert!(
        report.findings.iter().any(|(path, what)| path.contains("a/b") && what.contains("dangling")),
        "fsck must flag the dangling principal: {:?}",
        report.findings
    );
}

/// Fails every `put` whose object name contains the configured needle.
struct PathFault {
    needle: String,
}

impl FaultHook for PathFault {
    fn on(&self, point: &FaultPoint) -> FaultAction {
        match point {
            FaultPoint::Write { file, .. } if file.contains(&self.needle) => FaultAction::Drop,
            _ => FaultAction::Proceed,
        }
    }
}

/// A [`MemBackend`] that consults a [`FaultHook`] before every put —
/// the RAM-backend analogue of the durable backends' physical fault points.
struct HookedBackend {
    inner: MemBackend,
    hook: Mutex<Option<Arc<dyn FaultHook>>>,
}

impl HookedBackend {
    fn new() -> Arc<HookedBackend> {
        Arc::new(HookedBackend { inner: MemBackend::new(), hook: Mutex::new(None) })
    }

    fn set_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        *self.hook.lock().unwrap() = hook;
    }
}

impl StorageBackend for HookedBackend {
    fn put(&self, path: &str, data: &[u8]) -> Result<(), StorageError> {
        if let Some(hook) = self.hook.lock().unwrap().as_ref() {
            let point = FaultPoint::Write { file: path.to_string(), len: data.len() };
            if hook.on(&point) != FaultAction::Proceed {
                return Err(StorageError::Io(format!("injected fault at {point}")));
            }
        }
        self.inner.put(path, data)
    }

    fn get(&self, path: &str) -> Result<Vec<u8>, StorageError> {
        self.inner.get(path)
    }

    fn delete(&self, path: &str) -> Result<(), StorageError> {
        self.inner.delete(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn stat(&self, path: &str) -> Result<ObjectStat, StorageError> {
        self.inner.stat(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn lock(&self, path: &str, owner: u64) -> Result<(), StorageError> {
        self.inner.lock(path, owner)
    }

    fn unlock(&self, path: &str, owner: u64) {
        self.inner.unlock(path, owner)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
}

#[test]
fn failed_grant_put_unwinds_the_user_record() {
    let backend = HookedBackend::new();
    let (_p, ias, owner, volume, _sealed) = setup_on(backend.clone());
    let bob = UserKeys::from_seed("bob", &[3u8; 32]);
    let bob_machine = Platform::seeded(1002);
    ias.register_platform(&bob_machine);
    let joiner = VolumeJoiner::new(&bob_machine, backend.clone());
    joiner.publish_offer(&bob).unwrap();

    backend.set_hook(Some(Arc::new(PathFault { needle: protocol::grant_path("bob") })));
    let err = volume.grant_access(&owner, "bob", &bob.public_key()).unwrap_err();
    assert!(matches!(err, NexusError::Storage(_)), "got {err:?}");

    // Commit-or-unwind: the user record added ahead of the failed grant
    // put has been rolled back — no half-granted ghost in the supernode.
    assert_eq!(volume.users().unwrap(), vec!["owen".to_string()]);
    assert!(!backend.exists(&protocol::grant_path("bob")));

    // With the fault cleared the same grant goes through cleanly.
    backend.set_hook(None);
    volume.grant_access(&owner, "bob", &bob.public_key()).unwrap();
    assert_eq!(volume.users().unwrap(), vec!["owen".to_string(), "bob".to_string()]);
    joiner.accept_grant(&bob, &owner.public_key()).unwrap();
}
