//! Tests for the file-handle layer ([`nexus_core::NexusFile`]) and its AFS
//! open-to-close semantics.

use std::sync::Arc;

use nexus_core::{NexusConfig, NexusError, NexusFile, NexusVolume, OpenMode, UserKeys};
use nexus_sgx::{AttestationService, Platform};
use nexus_storage::{MemBackend, StorageBackend};

fn volume() -> (NexusVolume, Arc<MemBackend>) {
    let platform = Platform::seeded(0x0F11E);
    let ias = AttestationService::new();
    ias.register_platform(&platform);
    let backend = Arc::new(MemBackend::new());
    let owner = UserKeys::from_seed("owen", &[1u8; 32]);
    let (v, _) =
        NexusVolume::create(&platform, backend.clone(), &ias, &owner, NexusConfig::default())
            .unwrap();
    v.authenticate(&owner).unwrap();
    (v, backend)
}

#[test]
fn read_mode_requires_existing_file() {
    let (v, _) = volume();
    assert!(matches!(
        NexusFile::open(&v, "missing", OpenMode::Read),
        Err(NexusError::NotFound(_))
    ));
}

#[test]
fn writes_buffer_until_close() {
    let (v, backend) = volume();
    let mut f = NexusFile::open(&v, "buffered", OpenMode::Write).unwrap();
    let after_create = backend.stats().writes;
    f.write(b"aaaa").unwrap();
    f.write(b"bbbb").unwrap();
    assert_eq!(
        backend.stats().writes,
        after_create,
        "writes stay local until close (open-to-close semantics)"
    );
    f.close().unwrap();
    assert!(backend.stats().writes > after_create, "close flushes");
    assert_eq!(v.read_file("buffered").unwrap(), b"aaaabbbb");
}

#[test]
fn positioned_reads_and_writes() {
    let (v, _) = volume();
    let mut f = NexusFile::open(&v, "pos", OpenMode::Truncate).unwrap();
    f.write(b"0123456789").unwrap();
    f.seek(4);
    assert_eq!(f.read(3), b"456");
    assert_eq!(f.position(), 7);
    f.seek(2);
    f.write(b"XY").unwrap();
    f.close().unwrap();
    assert_eq!(v.read_file("pos").unwrap(), b"01XY456789");
}

#[test]
fn write_past_end_zero_fills() {
    let (v, _) = volume();
    let mut f = NexusFile::open(&v, "sparse", OpenMode::Truncate).unwrap();
    f.write(b"ab").unwrap();
    f.seek(2);
    f.set_len(6).unwrap();
    f.write(b"z").unwrap();
    f.close().unwrap();
    assert_eq!(v.read_file("sparse").unwrap(), b"abz\0\0\0");
}

#[test]
fn append_mode_positions_at_end() {
    let (v, _) = volume();
    v.write_file("log", b"first\n").unwrap();
    let mut f = NexusFile::open(&v, "log", OpenMode::Append).unwrap();
    assert_eq!(f.position(), 6);
    f.write(b"second\n").unwrap();
    f.close().unwrap();
    assert_eq!(v.read_file("log").unwrap(), b"first\nsecond\n");
}

#[test]
fn truncate_discards_previous_contents() {
    let (v, _) = volume();
    v.write_file("t", b"old contents").unwrap();
    let f = NexusFile::open(&v, "t", OpenMode::Truncate).unwrap();
    assert!(f.is_empty());
    f.close().unwrap();
    assert_eq!(v.read_file("t").unwrap(), b"");
}

#[test]
fn read_only_handles_reject_writes() {
    let (v, _) = volume();
    v.write_file("ro", b"data").unwrap();
    let mut f = NexusFile::open(&v, "ro", OpenMode::Read).unwrap();
    assert!(matches!(f.write(b"x"), Err(NexusError::AccessDenied(_))));
    assert!(matches!(f.set_len(0), Err(NexusError::AccessDenied(_))));
    assert_eq!(f.read(4), b"data");
}

#[test]
fn drop_flushes_dirty_handles() {
    let (v, _) = volume();
    {
        let mut f = NexusFile::open(&v, "dropped", OpenMode::Write).unwrap();
        f.write(b"flushed by drop").unwrap();
        // No close(): Drop must flush.
    }
    assert_eq!(v.read_file("dropped").unwrap(), b"flushed by drop");
}

#[test]
fn sync_flushes_without_closing() {
    let (v, _) = volume();
    let mut f = NexusFile::open(&v, "synced", OpenMode::Write).unwrap();
    f.write(b"partial").unwrap();
    f.sync().unwrap();
    assert_eq!(v.read_file("synced").unwrap(), b"partial");
    f.write(b" more").unwrap();
    f.close().unwrap();
    assert_eq!(v.read_file("synced").unwrap(), b"partial more");
}

#[test]
fn opening_a_directory_fails() {
    let (v, _) = volume();
    v.mkdir("d").unwrap();
    assert!(matches!(
        NexusFile::open(&v, "d", OpenMode::Read),
        Err(NexusError::IsADirectory(_))
    ));
    assert!(matches!(
        NexusFile::open(&v, "d", OpenMode::Write),
        Err(NexusError::IsADirectory(_))
    ));
}

#[test]
fn reads_clamp_at_eof() {
    let (v, _) = volume();
    v.write_file("small", b"abc").unwrap();
    let mut f = NexusFile::open(&v, "small", OpenMode::Read).unwrap();
    assert_eq!(f.read(100), b"abc");
    assert_eq!(f.read(100), b"");
    f.seek(1000);
    assert_eq!(f.position(), 3, "seek clamps to file size");
}
