//! End-to-end tests of the NEXUS volume lifecycle: create, authenticate,
//! operate, share across machines, and revoke.

use std::sync::Arc;

use nexus_core::{
    NexusConfig, NexusError, NexusVolume, OpenMode, NexusFile, Rights, SealedRootKey, UserKeys,
    VolumeJoiner,
};
use nexus_sgx::{AttestationService, Platform};
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, MemBackend, SimClock};

fn setup() -> (Platform, AttestationService, Arc<MemBackend>, UserKeys) {
    let platform = Platform::seeded(42);
    let ias = AttestationService::new();
    ias.register_platform(&platform);
    let backend = Arc::new(MemBackend::new());
    let owner = UserKeys::from_seed("owen", &[1u8; 32]);
    (platform, ias, backend, owner)
}

fn create_volume(
    platform: &Platform,
    ias: &AttestationService,
    backend: Arc<MemBackend>,
    owner: &UserKeys,
) -> (NexusVolume, SealedRootKey) {
    let (volume, sealed) =
        NexusVolume::create(platform, backend, ias, owner, NexusConfig::default()).unwrap();
    volume.authenticate(owner).unwrap();
    (volume, sealed)
}

#[test]
fn create_write_read_roundtrip() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    volume.mkdir("docs").unwrap();
    volume.write_file("docs/cake.c", b"int main() {}").unwrap();
    assert_eq!(volume.read_file("docs/cake.c").unwrap(), b"int main() {}");
}

#[test]
fn nested_directories_and_listing() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    volume.mkdir_all("a/b/c").unwrap();
    volume.write_file("a/b/c/deep.txt", b"deep").unwrap();
    volume.write_file("a/top.txt", b"top").unwrap();
    let mut names: Vec<String> = volume.list_dir("a").unwrap().into_iter().map(|r| r.name).collect();
    names.sort();
    assert_eq!(names, vec!["b".to_string(), "top.txt".to_string()]);
    assert_eq!(volume.read_file("a/b/c/deep.txt").unwrap(), b"deep");
}

#[test]
fn force_portable_crypto_config_applies_at_create() {
    let (platform, ias, backend, owner) = setup();
    let config = NexusConfig { force_portable_crypto: true, ..NexusConfig::default() };
    let (volume, _) = NexusVolume::create(&platform, backend, &ias, &owner, config).unwrap();
    // The config flag must have flipped the process-wide override, so
    // every ConstantTime key expanded from here on uses the bitsliced
    // engine even on AES-NI hosts.
    assert!(nexus_crypto::cpu::force_portable());
    assert_eq!(
        nexus_crypto::cpu::constant_time_backend(),
        nexus_crypto::CryptoBackend::Bitsliced
    );
    // The volume works as usual — the lanes are byte-identical.
    volume.authenticate(&owner).unwrap();
    volume.write_file("f", b"forced portable").unwrap();
    assert_eq!(volume.read_file("f").unwrap(), b"forced portable");
    // Release the runtime half of the override so the rest of this test
    // binary dispatches normally (concurrent tests may expand a key
    // bitsliced in the window — safe, the engines agree byte-for-byte).
    nexus_crypto::cpu::set_force_portable(false);
}

#[test]
fn unauthenticated_access_denied() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) =
        NexusVolume::create(&platform, backend, &ias, &owner, NexusConfig::default()).unwrap();
    // No authenticate() call.
    assert!(matches!(
        volume.mkdir("docs"),
        Err(NexusError::NotAuthenticated)
    ));
}

#[test]
fn wrong_key_fails_authentication() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) =
        NexusVolume::create(&platform, backend, &ias, &owner, NexusConfig::default()).unwrap();
    let stranger = UserKeys::from_seed("eve", &[66u8; 32]);
    assert!(volume.authenticate(&stranger).is_err());
}

#[test]
fn remount_from_sealed_rootkey() {
    let (platform, ias, backend, owner) = setup();
    let (volume, sealed) = create_volume(&platform, &ias, backend.clone(), &owner);
    volume.write_file("persist.txt", b"still here").unwrap();
    drop(volume);

    let volume = NexusVolume::mount(&platform, backend, &ias, &sealed, NexusConfig::default())
        .unwrap();
    volume.authenticate(&owner).unwrap();
    assert_eq!(volume.read_file("persist.txt").unwrap(), b"still here");
}

#[test]
fn sealed_rootkey_useless_on_other_machine() {
    let (platform, ias, backend, owner) = setup();
    let (_volume, sealed) = create_volume(&platform, &ias, backend.clone(), &owner);
    let other_machine = Platform::seeded(7);
    ias.register_platform(&other_machine);
    let err = NexusVolume::mount(&other_machine, backend, &ias, &sealed, NexusConfig::default())
        .unwrap_err();
    assert!(matches!(err, NexusError::Seal(_)));
}

#[test]
fn rename_and_remove() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    volume.mkdir("src").unwrap();
    volume.mkdir("dst").unwrap();
    volume.write_file("src/f.txt", b"payload").unwrap();
    volume.rename("src/f.txt", "dst/g.txt").unwrap();
    assert!(!volume.exists("src/f.txt"));
    assert_eq!(volume.read_file("dst/g.txt").unwrap(), b"payload");
    volume.remove("dst/g.txt").unwrap();
    assert!(!volume.exists("dst/g.txt"));
    // Directory now empty: removable.
    volume.remove("dst").unwrap();
    assert!(!volume.exists("dst"));
}

#[test]
fn rename_into_own_subtree_rejected() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    volume.mkdir_all("a/b").unwrap();
    assert!(matches!(
        volume.rename("a", "a/b/c"),
        Err(NexusError::InvalidName(_))
    ));
    assert!(matches!(
        volume.rename("a", "a/x"),
        Err(NexusError::InvalidName(_))
    ));
    // Sibling moves still work.
    volume.mkdir("c").unwrap();
    volume.rename("a/b", "c/b").unwrap();
    assert!(volume.exists("c/b"));
}

#[test]
fn remove_nonempty_directory_fails() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    volume.mkdir("d").unwrap();
    volume.write_file("d/f", b"x").unwrap();
    assert!(matches!(volume.remove("d"), Err(NexusError::NotEmpty(_))));
}

#[test]
fn symlinks_and_hardlinks() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    volume.write_file("real.txt", b"content").unwrap();
    volume.symlink("real.txt", "sym.txt").unwrap();
    assert_eq!(volume.readlink("sym.txt").unwrap(), "real.txt");

    volume.hardlink("real.txt", "hard.txt").unwrap();
    assert_eq!(volume.read_file("hard.txt").unwrap(), b"content");
    assert_eq!(volume.lookup("hard.txt").unwrap().nlink, 2);

    // Removing one name keeps the other alive.
    volume.remove("real.txt").unwrap();
    assert_eq!(volume.read_file("hard.txt").unwrap(), b"content");
    assert_eq!(volume.lookup("hard.txt").unwrap().nlink, 1);
}

#[test]
fn multi_chunk_files_roundtrip() {
    let (platform, ias, backend, owner) = setup();
    let config = NexusConfig { chunk_size: 1024, ..Default::default() };
    let (volume, _) =
        NexusVolume::create(&platform, backend, &ias, &owner, config).unwrap();
    volume.authenticate(&owner).unwrap();
    let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
    volume.write_file("big.bin", &data).unwrap();
    assert_eq!(volume.read_file("big.bin").unwrap(), data);
    // Random access decrypts only covering chunks.
    assert_eq!(volume.read_range("big.bin", 1000, 100).unwrap(), data[1000..1100]);
    assert_eq!(volume.read_range("big.bin", 0, 1).unwrap(), data[..1]);
    assert_eq!(volume.read_range("big.bin", 4999, 1).unwrap(), data[4999..]);
    assert!(volume.read_range("big.bin", 4999, 2).is_err());
}

#[test]
fn file_handles_flush_on_close() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    let mut f = NexusFile::open(&volume, "log.txt", OpenMode::Truncate).unwrap();
    f.write(b"line one\n").unwrap();
    f.write(b"line two\n").unwrap();
    f.close().unwrap();

    let mut f = NexusFile::open(&volume, "log.txt", OpenMode::Append).unwrap();
    f.write(b"line three\n").unwrap();
    f.close().unwrap();

    assert_eq!(
        volume.read_file("log.txt").unwrap(),
        b"line one\nline two\nline three\n"
    );
    let mut f = NexusFile::open(&volume, "log.txt", OpenMode::Read).unwrap();
    assert_eq!(f.read(8), b"line one");
    assert!(f.write(b"x").is_err());
}

#[test]
fn sharing_via_key_exchange_across_machines() {
    let (owen_machine, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&owen_machine, &ias, backend.clone(), &owner);
    volume.mkdir("shared").unwrap();
    volume.write_file("shared/doc.txt", b"for alice").unwrap();

    // Alice on her own machine.
    let alice_machine = Platform::seeded(1001);
    ias.register_platform(&alice_machine);
    let alice = UserKeys::from_seed("alice", &[2u8; 32]);
    let joiner = VolumeJoiner::new(&alice_machine, backend.clone());
    joiner.publish_offer(&alice).unwrap();

    // Owen grants access (verifies Alice's quote) and opens the directory.
    volume.grant_access(&owner, "alice", &alice.public_key()).unwrap();
    volume.set_acl("shared", "alice", Rights::RW).unwrap();

    // Alice extracts and mounts.
    let sealed = joiner.accept_grant(&alice, &owner.public_key()).unwrap();
    let alice_volume = NexusVolume::mount(
        &alice_machine,
        backend,
        &ias,
        &sealed,
        NexusConfig::default(),
    )
    .unwrap();
    alice_volume.authenticate(&alice).unwrap();
    assert_eq!(alice_volume.read_file("shared/doc.txt").unwrap(), b"for alice");
    alice_volume.write_file("shared/reply.txt", b"thanks!").unwrap();
    assert_eq!(volume.read_file("shared/reply.txt").unwrap(), b"thanks!");
}

#[test]
fn acl_enforcement_and_revocation() {
    let (owen_machine, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&owen_machine, &ias, backend.clone(), &owner);
    volume.mkdir("private").unwrap();
    volume.mkdir("shared").unwrap();
    volume.write_file("private/secret.txt", b"top secret").unwrap();
    volume.write_file("shared/memo.txt", b"hello team").unwrap();

    let alice_machine = Platform::seeded(1001);
    ias.register_platform(&alice_machine);
    let alice = UserKeys::from_seed("alice", &[2u8; 32]);
    let joiner = VolumeJoiner::new(&alice_machine, backend.clone());
    joiner.publish_offer(&alice).unwrap();
    volume.grant_access(&owner, "alice", &alice.public_key()).unwrap();
    volume.set_acl("shared", "alice", Rights::READ).unwrap();

    let sealed = joiner.accept_grant(&alice, &owner.public_key()).unwrap();
    let alice_volume = NexusVolume::mount(
        &alice_machine,
        backend,
        &ias,
        &sealed,
        NexusConfig::default(),
    )
    .unwrap();
    alice_volume.authenticate(&alice).unwrap();

    // Read allowed where granted; write is not; private dir fully opaque.
    assert_eq!(alice_volume.read_file("shared/memo.txt").unwrap(), b"hello team");
    assert!(matches!(
        alice_volume.write_file("shared/her.txt", b"x"),
        Err(NexusError::AccessDenied(_))
    ));
    assert!(matches!(
        alice_volume.read_file("private/secret.txt"),
        Err(NexusError::AccessDenied(_))
    ));

    // Revocation: one metadata update, then Alice's next auth/use fails.
    volume.revoke_acl("shared", "alice").unwrap();
    assert!(matches!(
        alice_volume.read_file("shared/memo.txt"),
        Err(NexusError::AccessDenied(_))
    ));

    // Full volume revocation removes her identity.
    volume.revoke_user("alice").unwrap();
    assert!(alice_volume.authenticate(&alice).is_err());
}

#[test]
fn works_over_simulated_afs() {
    let platform = Platform::seeded(5);
    let ias = AttestationService::new();
    ias.register_platform(&platform);
    let server = AfsServer::new();
    let clock = SimClock::new();
    let client = Arc::new(AfsClient::connect(&server, clock.clone(), LatencyModel::default()));
    let owner = UserKeys::from_seed("owen", &[1u8; 32]);
    let (volume, _) = NexusVolume::create(
        &platform,
        client.clone(),
        &ias,
        &owner,
        NexusConfig::default(),
    )
    .unwrap();
    volume.authenticate(&owner).unwrap();
    volume.mkdir("d").unwrap();
    volume.write_file("d/f.bin", &vec![7u8; 3 * 1024 * 1024]).unwrap();
    client.flush_cache();
    assert_eq!(volume.read_file("d/f.bin").unwrap().len(), 3 * 1024 * 1024);
    assert!(clock.now().as_millis() > 0, "virtual network time accumulated");
    // The server only ever saw ciphertext object names (32-hex UUIDs).
    for (name, _) in server.object_inventory() {
        assert!(name.len() == 32 || name.starts_with("xchg-"), "obfuscated: {name}");
    }
}

#[test]
fn works_over_cloud_object_store() {
    // §IV portability: the identical volume code over an S3-style service
    // (WAN latencies, no server-side locking primitive).
    use nexus_storage::CloudStore;
    let platform = Platform::seeded(0xC10D);
    let ias = AttestationService::new();
    ias.register_platform(&platform);
    let clock = SimClock::new();
    let cloud = Arc::new(CloudStore::new(clock.clone()));
    let owner = UserKeys::from_seed("owen", &[1u8; 32]);
    let (volume, sealed) = NexusVolume::create(
        &platform,
        cloud.clone(),
        &ias,
        &owner,
        NexusConfig::default(),
    )
    .unwrap();
    volume.authenticate(&owner).unwrap();
    volume.mkdir_all("docs/sub").unwrap();
    volume.write_file("docs/sub/f.bin", &vec![9u8; 300_000]).unwrap();
    volume.rename("docs/sub/f.bin", "docs/g.bin").unwrap();
    assert_eq!(volume.read_file("docs/g.bin").unwrap().len(), 300_000);
    assert!(clock.now().as_millis() > 50, "WAN time charged");
    assert!(cloud.billing().put_requests > 0);

    // Remount from the sealed rootkey still works.
    drop(volume);
    let volume =
        NexusVolume::mount(&platform, cloud.clone(), &ias, &sealed, NexusConfig::default())
            .unwrap();
    volume.authenticate(&owner).unwrap();
    assert_eq!(volume.read_range("docs/g.bin", 100, 16).unwrap(), vec![9u8; 16]);
    // fsck ignores the emulated `.lock` objects.
    let report = volume.fsck(nexus_core::FsckMode::Deep).unwrap();
    assert!(report.is_clean(), "{:?}", report.errors);
    assert!(report.orphans.is_empty(), "{:?}", report.orphans);
}

#[test]
fn users_listing_and_owner_admin_only() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend.clone(), &owner);
    let alice = UserKeys::from_seed("alice", &[2u8; 32]);
    volume.add_user("alice", alice.public_key()).unwrap();
    assert_eq!(volume.users().unwrap(), vec!["owen".to_string(), "alice".to_string()]);

    // Alice (not owner) cannot administer.
    volume.logout();
    volume.authenticate(&alice).unwrap();
    assert!(matches!(
        volume.add_user("bob", UserKeys::from_seed("bob", &[3u8; 32]).public_key()),
        Err(NexusError::AccessDenied(_))
    ));
    assert!(matches!(
        volume.revoke_user("alice"),
        Err(NexusError::AccessDenied(_))
    ));
}

#[test]
fn many_files_fill_buckets() {
    let (platform, ias, backend, owner) = setup();
    let config = NexusConfig { bucket_size: 8, ..Default::default() };
    let (volume, _) =
        NexusVolume::create(&platform, backend.clone(), &ias, &owner, config).unwrap();
    volume.authenticate(&owner).unwrap();
    volume.mkdir("flat").unwrap();
    for i in 0..50 {
        volume.write_file(&format!("flat/file-{i:03}"), format!("contents {i}").as_bytes()).unwrap();
    }
    let listing = volume.list_dir("flat").unwrap();
    assert_eq!(listing.len(), 50);
    for i in 0..50 {
        assert_eq!(
            volume.read_file(&format!("flat/file-{i:03}")).unwrap(),
            format!("contents {i}").as_bytes()
        );
    }
    for i in 0..50 {
        volume.remove(&format!("flat/file-{i:03}")).unwrap();
    }
    assert!(volume.list_dir("flat").unwrap().is_empty());
}

#[test]
fn empty_file_roundtrip() {
    let (platform, ias, backend, owner) = setup();
    let (volume, _) = create_volume(&platform, &ias, backend, &owner);
    volume.create_file("empty").unwrap();
    assert_eq!(volume.read_file("empty").unwrap(), Vec::<u8>::new());
    assert_eq!(volume.lookup("empty").unwrap().size, 0);
}
