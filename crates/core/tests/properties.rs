//! Property-based tests for the metadata layer: the wire format and sealed
//! object format must never panic on attacker-supplied bytes, and all
//! structures must roundtrip.

use proptest::prelude::*;

use nexus_core::metadata::crypto::{open_object, seal_object, ObjectKind, Preamble};
use nexus_core::metadata::dirnode::{Bucket, DirEntry, EntryKind};
use nexus_core::metadata::filenode::{ChunkContext, Filenode};
use nexus_core::metadata::supernode::Supernode;
use nexus_core::wire::{Reader, Writer};
use nexus_core::NexusUuid;

fn uuid_strategy() -> impl Strategy<Value = NexusUuid> {
    prop::array::uniform16(any::<u8>()).prop_map(NexusUuid)
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9._-]{1,24}"
}

fn entry_strategy() -> impl Strategy<Value = DirEntry> {
    (
        name_strategy(),
        uuid_strategy(),
        prop_oneof![
            Just(EntryKind::Directory),
            Just(EntryKind::File),
            name_strategy().prop_map(EntryKind::Symlink),
        ],
    )
        .prop_map(|(name, uuid, kind)| DirEntry { name, uuid, kind })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Reader::new(&bytes);
        // Exercise every read type; all may error, none may panic.
        let _ = r.u8();
        let _ = r.u16();
        let _ = r.u32();
        let _ = r.u64();
        let _ = r.bytes();
        let _ = r.string();
        let _ = r.uuid();
        let _ = r.finish();
    }

    #[test]
    fn open_object_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        rootkey in prop::array::uniform32(any::<u8>()),
    ) {
        // Any result is fine; panicking or accepting garbage is not.
        if let Ok((_, body)) = open_object(&rootkey, &bytes) {
            // Forging an authentic object without the rootkey is impossible.
            panic!("garbage accepted as authentic metadata: {body:?}");
        }
    }

    #[test]
    fn sealed_objects_roundtrip(
        rootkey in prop::array::uniform32(any::<u8>()),
        uuid in uuid_strategy(),
        parent in uuid_strategy(),
        version in any::<u64>(),
        body in prop::collection::vec(any::<u8>(), 0..1024),
        seed in any::<u64>(),
    ) {
        let preamble = Preamble { kind: ObjectKind::Filenode, uuid, parent, version };
        let mut counter = seed;
        let blob = seal_object(&rootkey, &preamble, &body, |dest| {
            for b in dest.iter_mut() {
                counter = counter.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (counter >> 33) as u8;
            }
        });
        let (decoded, opened_body) = open_object(&rootkey, &blob).unwrap();
        prop_assert_eq!(decoded, preamble);
        prop_assert_eq!(opened_body, body);
        // The wrong rootkey never opens it.
        let mut wrong = rootkey;
        wrong[0] ^= 1;
        prop_assert!(open_object(&wrong, &blob).is_err());
    }

    #[test]
    fn bucket_roundtrips(entries in prop::collection::vec(entry_strategy(), 0..40)) {
        let mut unique = entries;
        unique.sort_by(|a, b| a.name.cmp(&b.name));
        unique.dedup_by(|a, b| a.name == b.name);
        let bucket = Bucket { entries: unique };
        prop_assert_eq!(Bucket::decode(&bucket.encode()).unwrap(), bucket);
    }

    #[test]
    fn bucket_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Bucket::decode(&bytes);
    }

    #[test]
    fn filenode_roundtrips(
        uuid in uuid_strategy(),
        parent in uuid_strategy(),
        data_uuid in uuid_strategy(),
        chunk_size in 1u32..1_000_000,
        nlink in 1u32..5,
        size in 0u64..10_000_000,
    ) {
        let mut fnode = Filenode::new(uuid, parent, data_uuid, chunk_size);
        fnode.size = size;
        fnode.nlink = nlink;
        fnode.chunks = (0..Filenode::chunk_count_for(size, chunk_size))
            .map(|i| ChunkContext { key: [(i % 251) as u8; 16], nonce: [(i % 13) as u8; 12] })
            .collect();
        // Filenode bodies stay bounded in tests: skip absurd chunk counts.
        prop_assume!(fnode.chunks.len() < 100_000);
        prop_assert_eq!(Filenode::decode(&fnode.encode()).unwrap(), fnode);
    }

    #[test]
    fn filenode_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Filenode::decode(&bytes);
    }

    #[test]
    fn supernode_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Supernode::decode(&bytes);
    }

    #[test]
    fn writer_reader_mixed_sequences(
        values in prop::collection::vec(
            prop_oneof![
                any::<u8>().prop_map(|v| (0u8, v as u64)),
                any::<u32>().prop_map(|v| (1u8, v as u64)),
                any::<u64>().prop_map(|v| (2u8, v)),
            ],
            0..32,
        ),
    ) {
        let mut w = Writer::new();
        for (tag, v) in &values {
            match tag {
                0 => { w.u8(*v as u8); }
                1 => { w.u32(*v as u32); }
                _ => { w.u64(*v); }
            }
        }
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        for (tag, v) in &values {
            match tag {
                0 => prop_assert_eq!(r.u8().unwrap() as u64, *v),
                1 => prop_assert_eq!(r.u32().unwrap() as u64, *v),
                _ => prop_assert_eq!(r.u64().unwrap(), *v),
            }
        }
        r.finish().unwrap();
    }
}
