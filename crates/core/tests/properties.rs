//! Property-based tests for the metadata layer: the wire format and sealed
//! object format must never panic on attacker-supplied bytes, and all
//! structures must roundtrip. Runs on the in-repo `nexus-testkit` harness.

use nexus_core::metadata::crypto::{open_object, seal_object, ObjectKind, Preamble};
use nexus_core::metadata::dirnode::{Bucket, DirEntry, EntryKind};
use nexus_core::metadata::filenode::{ChunkContext, Filenode};
use nexus_core::metadata::supernode::Supernode;
use nexus_core::wire::{Reader, Writer};
use nexus_core::{Acl, GroupId, NexusUuid, Principal, Rights, UserId};
use nexus_testkit::{shrink, tk_assert, tk_assert_eq, Gen, Runner};

const CASES: u32 = 96;

const NAME_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'A', 'B', 'Z', '0', '1', '9', '.', '_', '-',
];

fn gen_uuid(g: &mut Gen) -> NexusUuid {
    NexusUuid(g.bytes::<16>())
}

fn gen_name(g: &mut Gen) -> String {
    g.string(NAME_CHARS, 1, 24)
}

fn gen_entry(g: &mut Gen) -> DirEntry {
    let kind = match g.usize_below(3) {
        0 => EntryKind::Directory,
        1 => EntryKind::File,
        _ => EntryKind::Symlink(gen_name(g)),
    };
    DirEntry { name: gen_name(g), uuid: gen_uuid(g), kind }
}

#[test]
fn reader_never_panics_on_garbage() {
    Runner::new("reader_never_panics_on_garbage").cases(CASES).run(
        |g| g.byte_vec(0, 256),
        |v| shrink::bytes(v),
        |bytes| {
            let mut r = Reader::new(bytes);
            // Exercise every read type; all may error, none may panic.
            let _ = r.u8();
            let _ = r.u16();
            let _ = r.u32();
            let _ = r.u64();
            let _ = r.bytes();
            let _ = r.string();
            let _ = r.uuid();
            let _ = r.finish();
            Ok(())
        },
    );
}

#[test]
fn open_object_never_panics_on_garbage() {
    Runner::new("open_object_never_panics_on_garbage").cases(CASES).run(
        |g| (g.byte_vec(0, 512), g.bytes::<32>()),
        |(bytes, key)| shrink::bytes(bytes).into_iter().map(|b| (b, *key)).collect(),
        |(bytes, rootkey)| {
            // Any result is fine; panicking or accepting garbage is not.
            if let Ok((_, body)) = open_object(rootkey, bytes) {
                // Forging an authentic object without the rootkey is
                // impossible.
                return Err(format!("garbage accepted as authentic metadata: {body:?}"));
            }
            Ok(())
        },
    );
}

#[test]
fn sealed_objects_roundtrip() {
    Runner::new("sealed_objects_roundtrip").cases(CASES).run(
        |g| {
            (
                g.bytes::<32>(),
                gen_uuid(g),
                gen_uuid(g),
                g.u64(),
                g.byte_vec(0, 1024),
                g.u64(),
            )
        },
        shrink::none,
        |(rootkey, uuid, parent, version, body, seed)| {
            let preamble =
                Preamble { kind: ObjectKind::Filenode, uuid: *uuid, parent: *parent, version: *version, scope: None };
            let mut counter = *seed;
            let blob = seal_object(rootkey, &preamble, body, |dest| {
                for b in dest.iter_mut() {
                    counter = counter.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *b = (counter >> 33) as u8;
                }
            });
            let (decoded, opened_body) = open_object(rootkey, &blob).unwrap();
            tk_assert_eq!(decoded, preamble);
            tk_assert_eq!(opened_body, *body);
            // The wrong rootkey never opens it.
            let mut wrong = *rootkey;
            wrong[0] ^= 1;
            tk_assert!(open_object(&wrong, &blob).is_err());
            Ok(())
        },
    );
}

#[test]
fn bucket_roundtrips() {
    Runner::new("bucket_roundtrips").cases(CASES).run(
        |g| g.vec(0, 40, gen_entry),
        |v| shrink::vec(v),
        |entries| {
            let mut unique = entries.clone();
            unique.sort_by(|a, b| a.name.cmp(&b.name));
            unique.dedup_by(|a, b| a.name == b.name);
            let bucket = Bucket { entries: unique };
            tk_assert_eq!(Bucket::decode(&bucket.encode()).unwrap(), bucket);
            Ok(())
        },
    );
}

#[test]
fn bucket_decode_never_panics() {
    Runner::new("bucket_decode_never_panics").cases(CASES).run(
        |g| g.byte_vec(0, 256),
        |v| shrink::bytes(v),
        |bytes| {
            let _ = Bucket::decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn filenode_roundtrips() {
    Runner::new("filenode_roundtrips").cases(CASES).run(
        |g| {
            (
                gen_uuid(g),
                gen_uuid(g),
                gen_uuid(g),
                1 + g.u32() % 1_000_000,      // chunk_size
                1 + g.u32() % 4,              // nlink
                g.u64() % 10_000_000,         // size
            )
        },
        shrink::none,
        |(uuid, parent, data_uuid, chunk_size, nlink, size)| {
            let mut fnode = Filenode::new(*uuid, *parent, *data_uuid, *chunk_size);
            fnode.size = *size;
            fnode.nlink = *nlink;
            fnode.chunks = (0..Filenode::chunk_count_for(*size, *chunk_size))
                .map(|i| ChunkContext { key: [(i % 251) as u8; 16], nonce: [(i % 13) as u8; 12] })
                .collect();
            // Filenode bodies stay bounded in tests: skip absurd chunk
            // counts rather than encode megabytes of contexts.
            if fnode.chunks.len() >= 100_000 {
                return Ok(());
            }
            tk_assert_eq!(Filenode::decode(&fnode.encode()).unwrap(), fnode);
            Ok(())
        },
    );
}

#[test]
fn filenode_decode_never_panics() {
    Runner::new("filenode_decode_never_panics").cases(CASES).run(
        |g| g.byte_vec(0, 256),
        |v| shrink::bytes(v),
        |bytes| {
            let _ = Filenode::decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn supernode_decode_never_panics() {
    Runner::new("supernode_decode_never_panics").cases(CASES).run(
        |g| g.byte_vec(0, 512),
        |v| shrink::bytes(v),
        |bytes| {
            let _ = Supernode::decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn writer_reader_mixed_sequences() {
    Runner::new("writer_reader_mixed_sequences").cases(CASES).run(
        |g| {
            g.vec(0, 32, |g| match g.usize_below(3) {
                0 => (0u8, u64::from(g.u8())),
                1 => (1u8, u64::from(g.u32())),
                _ => (2u8, g.u64()),
            })
        },
        |v| shrink::vec(v),
        |values| {
            let mut w = Writer::new();
            for (tag, v) in values {
                match tag {
                    0 => {
                        w.u8(*v as u8);
                    }
                    1 => {
                        w.u32(*v as u32);
                    }
                    _ => {
                        w.u64(*v);
                    }
                }
            }
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            for (tag, v) in values {
                match tag {
                    0 => tk_assert_eq!(u64::from(r.u8().unwrap()), *v),
                    1 => tk_assert_eq!(u64::from(r.u32().unwrap()), *v),
                    _ => tk_assert_eq!(r.u64().unwrap(), *v),
                }
            }
            r.finish().unwrap();
            Ok(())
        },
    );
}

fn gen_acl(g: &mut Gen) -> Acl {
    let mut acl = Acl::new();
    for _ in 0..g.usize_below(8) {
        let principal = if g.usize_below(2) == 0 {
            Principal::User(UserId(g.usize_below(32) as u32))
        } else {
            Principal::Group(GroupId(g.usize_below(16) as u32))
        };
        acl.grant_principal(principal, Rights(g.usize_below(4) as u8));
    }
    acl
}

#[test]
fn acl_encode_decode_is_canonical() {
    Runner::new("acl_encode_decode_is_canonical").cases(CASES).run(
        gen_acl,
        |_| Vec::new(),
        |acl| {
            let mut w = Writer::new();
            acl.encode(&mut w);
            let bytes = w.into_bytes();
            let decoded = Acl::decode(&mut Reader::new(&bytes)).map_err(|e| e.to_string())?;
            tk_assert_eq!(&decoded, acl);
            // Canonical: re-encoding the decoded list reproduces the exact
            // bytes, so encode∘decode is a fixpoint on the wire form.
            let mut w2 = Writer::new();
            decoded.encode(&mut w2);
            tk_assert_eq!(w2.into_bytes(), bytes);
            Ok(())
        },
    );
}

#[test]
fn acl_decode_rejects_duplicate_principals() {
    // v1 layout: count, then (user id, rights) pairs.
    let mut w = Writer::new();
    w.u32(2);
    w.u32(5).u8(1);
    w.u32(5).u8(3);
    assert!(Acl::decode(&mut Reader::new(&w.into_bytes())).is_err());

    // v2 layout: marker, count, then (tag, id, rights) triples. The same
    // id under *different* tags is two distinct principals and stays legal.
    let mut w = Writer::new();
    w.u32(0xFFFF_FFFF).u32(2);
    w.u8(1).u32(5).u8(1);
    w.u8(1).u32(5).u8(3);
    assert!(Acl::decode(&mut Reader::new(&w.into_bytes())).is_err());

    let mut w = Writer::new();
    w.u32(0xFFFF_FFFF).u32(2);
    w.u8(0).u32(5).u8(1);
    w.u8(1).u32(5).u8(3);
    assert!(Acl::decode(&mut Reader::new(&w.into_bytes())).is_ok());
}
