//! Property test for the parallel chunk data path: for random file sizes
//! (including exact chunk boundaries and the empty file), sealing and
//! opening through the worker pool at 1, 2, and 8 threads round-trips and
//! produces ciphertext byte-for-byte identical to the serial loop. This is
//! the determinism contract `nexus_core::datapath` documents; a scheduling
//! dependency anywhere in the fan-out breaks it.

use nexus_core::datapath::{open_chunks, seal_chunks};
use nexus_core::metadata::filenode::{ChunkContext, Filenode};
use nexus_core::NexusUuid;
use nexus_core::CryptoProfile;
use nexus_pool::ThreadPool;
use nexus_testkit::{shrink, tk_assert_eq, Gen, Runner};

const CHUNK_SIZE: u32 = 256;

/// One generated case: the file contents (chunking derives from length).
fn gen_case(g: &mut Gen) -> Vec<u8> {
    // Bias toward interesting sizes: near chunk multiples and small files.
    let len = match g.usize_below(4) {
        0 => g.usize_in(0, 8),
        1 => {
            let chunks = g.usize_in(1, 8);
            let jitter = g.usize_in(0, 2);
            (chunks * CHUNK_SIZE as usize).saturating_sub(1) + jitter
        }
        _ => g.usize_in(0, 2048),
    };
    let mut data = vec![0u8; len];
    for chunk in data.chunks_mut(8) {
        let bytes = g.u64().to_le_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    data
}

fn contexts_for(g: &mut Gen, n: usize) -> Vec<ChunkContext> {
    (0..n).map(|_| ChunkContext { key: g.bytes::<16>(), nonce: g.bytes::<12>() }).collect()
}

#[test]
fn parallel_seal_open_matches_serial_at_every_width() {
    Runner::new("parallel_seal_open_matches_serial_at_every_width")
        .cases(48)
        // Always-run corpus: empty file, one byte, exactly one chunk,
        // exactly two chunks, two chunks plus one byte.
        .regressions([
            Vec::new(),
            vec![0xa5],
            vec![0x5a; CHUNK_SIZE as usize],
            vec![0x3c; 2 * CHUNK_SIZE as usize],
            vec![0xc3; 2 * CHUNK_SIZE as usize + 1],
        ])
        .run(
            gen_case,
            |v| shrink::bytes(v),
            |data| {
                // Contexts derive from the data so regression cases are
                // self-contained; drawn once, shared by every width.
                let mut g = Gen::new(0x9e37 ^ data.len() as u64);
                let n_chunks = Filenode::chunk_count_for(data.len() as u64, CHUNK_SIZE) as usize;
                let contexts = contexts_for(&mut g, n_chunks);
                let uuid = NexusUuid(g.bytes::<16>());

                let serial =
                    seal_chunks(&ThreadPool::new(1), CryptoProfile::Fast, &uuid, data, CHUNK_SIZE as usize, &contexts);
                tk_assert_eq!(
                    serial.len(),
                    data.len() + n_chunks * 16,
                    "sealed size is plaintext plus one tag per chunk"
                );

                let mut fnode =
                    Filenode::new(uuid, NexusUuid([0; 16]), uuid, CHUNK_SIZE);
                fnode.size = data.len() as u64;
                fnode.chunks = contexts.clone();

                for workers in [2usize, 8] {
                    let pool = ThreadPool::new(workers);
                    let parallel =
                        seal_chunks(&pool, CryptoProfile::Fast, &uuid, data, CHUNK_SIZE as usize, &contexts);
                    tk_assert_eq!(
                        &parallel,
                        &serial,
                        "ciphertext must be byte-identical at {workers} workers"
                    );
                    let opened = open_chunks(&pool, CryptoProfile::Fast, &fnode, &serial, 0, n_chunks as u64)
                        .map_err(|e| format!("open failed at {workers} workers: {e}"))?;
                    tk_assert_eq!(&opened, data, "roundtrip at {workers} workers");
                }
                let opened = open_chunks(&ThreadPool::new(1), CryptoProfile::Fast, &fnode, &serial, 0, n_chunks as u64)
                    .map_err(|e| format!("serial open failed: {e}"))?;
                tk_assert_eq!(&opened, data, "serial roundtrip");
                Ok(())
            },
        );
}
