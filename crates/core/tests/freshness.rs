//! Tests for the §VI-C volume-wide rollback protection (Merkle-anchored
//! freshness manifest).

use std::sync::Arc;

use nexus_core::{NexusConfig, NexusError, NexusVolume, UserKeys};
use nexus_sgx::{AttestationService, Platform};
use nexus_storage::{MaliciousBackend, MemBackend};

type Evil = Arc<MaliciousBackend<MemBackend>>;

fn fresh_config() -> NexusConfig {
    NexusConfig { merkle_freshness: true, ..Default::default() }
}

fn setup(config: NexusConfig) -> (Platform, AttestationService, Evil, UserKeys, NexusVolume, nexus_core::SealedRootKey) {
    let platform = Platform::seeded(0xF8E5);
    let ias = AttestationService::new();
    ias.register_platform(&platform);
    let evil: Evil = Arc::new(MaliciousBackend::new(MemBackend::new()));
    let owner = UserKeys::from_seed("owen", &[1u8; 32]);
    let (volume, sealed) =
        NexusVolume::create(&platform, evil.clone(), &ias, &owner, config).unwrap();
    volume.authenticate(&owner).unwrap();
    (platform, ias, evil, owner, volume, sealed)
}

#[test]
fn normal_operation_with_manifest() {
    let (_, _, _, _, volume, _) = setup(fresh_config());
    volume.mkdir_all("a/b").unwrap();
    volume.write_file("a/b/f.txt", b"hello").unwrap();
    assert_eq!(volume.read_file("a/b/f.txt").unwrap(), b"hello");
    volume.rename("a/b/f.txt", "a/g.txt").unwrap();
    volume.remove("a/g.txt").unwrap();
    volume.remove("a/b").unwrap();
    assert_eq!(volume.list_dir("a").unwrap().len(), 0);
}

#[test]
fn remount_with_manifest_works() {
    let (platform, ias, evil, owner, volume, sealed) = setup(fresh_config());
    volume.write_file("f.txt", b"persisted").unwrap();
    drop(volume);
    let volume =
        NexusVolume::mount(&platform, evil.clone(), &ias, &sealed, NexusConfig::default())
            .unwrap();
    volume.authenticate(&owner).unwrap();
    assert_eq!(volume.read_file("f.txt").unwrap(), b"persisted");
}

#[test]
fn single_object_rollback_detected_by_fresh_client() {
    // THE capability the manifest adds: per-object versions cannot protect
    // a client that never saw the object, but the manifest can.
    let (platform, ias, evil, owner, volume, sealed) = setup(fresh_config());
    volume.write_file("doc.txt", b"version 1").unwrap();
    volume.write_file("doc.txt", b"version 2").unwrap();
    let filenode_uuid = volume.lookup("doc.txt").unwrap().uuid.object_name();

    // The server rolls back ONLY the filenode (not the manifest).
    evil.rollback(&filenode_uuid);

    // A brand-new client with no history must still detect it.
    let fresh =
        NexusVolume::mount(&platform, evil.clone(), &ias, &sealed, NexusConfig::default())
            .unwrap();
    fresh.authenticate(&owner).unwrap();
    let err = fresh.read_file("doc.txt").unwrap_err();
    assert!(
        matches!(err, NexusError::Integrity(_) | NexusError::Rollback { .. }),
        "got {err}"
    );
}

#[test]
fn without_manifest_fresh_client_misses_single_object_rollback() {
    // Control: the base design (per-object versions only) accepts the same
    // attack when the victim has no history — motivating the manifest.
    let (platform, ias, evil, owner, volume, sealed) = setup(NexusConfig::default());
    volume.write_file("doc.txt", b"version 1").unwrap();
    volume.write_file("doc.txt", b"version 2").unwrap();
    let filenode_uuid = volume.lookup("doc.txt").unwrap().uuid.object_name();
    evil.rollback(&filenode_uuid);
    let fresh =
        NexusVolume::mount(&platform, evil.clone(), &ias, &sealed, NexusConfig::default())
            .unwrap();
    fresh.authenticate(&owner).unwrap();
    // The stale filenode is authentic and the client has no version memory:
    // rolled-back (stale) content is served without any error. (The oldest
    // recorded filenode version is the just-created empty file.)
    let served = fresh.read_file("doc.txt").unwrap();
    assert_ne!(served, b"version 2", "client was served stale state silently");
}

#[test]
fn whole_volume_rollback_detected_by_writer_via_counter() {
    // If the server rolls back the manifest AND the objects consistently,
    // a client whose enclave wrote newer state detects it through the
    // monotonic-counter anchor even after its caches are dropped.
    let (_, _, evil, _, volume, _) = setup(fresh_config());
    volume.write_file("doc.txt", b"version 1").unwrap();
    volume.write_file("doc.txt", b"version 2").unwrap();
    // Roll back everything the server stores (manifest included).
    evil.rollback("");
    let err = volume.read_file("doc.txt").unwrap_err();
    assert!(
        matches!(err, NexusError::Rollback { .. } | NexusError::Integrity(_)),
        "got {err}"
    );
}

#[test]
fn manifest_tampering_detected() {
    let (_, _, evil, _, volume, _) = setup(fresh_config());
    volume.write_file("doc.txt", b"data").unwrap();
    // Find the manifest object: tamper with every object; the first thing
    // a fresh read touches beyond cache is rejected either way.
    evil.tamper_with("");
    // The warm cache may still serve the read; force a path that must
    // revalidate by writing (which re-uploads the manifest after reading it).
    match volume.read_file("doc.txt") {
        Err(e) => assert!(matches!(e, NexusError::Integrity(_)), "got {e}"),
        Ok(_) => {
            let err = volume.write_file("doc2.txt", b"x").unwrap_err();
            assert!(matches!(err, NexusError::Integrity(_)), "got {err}");
        }
    }
}

#[test]
fn removals_keep_manifest_consistent() {
    // Deletion bookkeeping: removed objects leave the manifest, remaining
    // objects stay verifiable — including for a brand-new client.
    let (platform, ias, evil, owner, volume, sealed) = setup(fresh_config());
    for i in 0..20 {
        volume.write_file(&format!("f{i:02}.txt"), format!("data {i}").as_bytes()).unwrap();
    }
    for i in 0..10 {
        volume.remove(&format!("f{i:02}.txt")).unwrap();
    }
    let fresh =
        NexusVolume::mount(&platform, evil.clone(), &ias, &sealed, NexusConfig::default())
            .unwrap();
    fresh.authenticate(&owner).unwrap();
    assert_eq!(fresh.list_dir("").unwrap().len(), 10);
    for i in 10..20 {
        assert_eq!(
            fresh.read_file(&format!("f{i:02}.txt")).unwrap(),
            format!("data {i}").as_bytes()
        );
    }
    // Names can be reused after removal.
    fresh.write_file("f00.txt", b"recreated").unwrap();
    assert_eq!(volume.read_file("f00.txt").unwrap(), b"recreated");
}

#[test]
fn supernode_rollback_cannot_resurrect_revoked_user() {
    // Revoke alice, then roll the supernode (and only it) back to the
    // version that still listed her: a history-less client must refuse.
    let (platform, ias, evil, owner, volume, sealed) = setup(fresh_config());
    let alice = nexus_core::UserKeys::from_seed("alice", &[2u8; 32]);
    volume.add_user("alice", alice.public_key()).unwrap();
    volume.revoke_user("alice").unwrap();

    let supernode_uuid = volume.volume_id().object_name();
    evil.rollback(&supernode_uuid);

    let fresh =
        NexusVolume::mount(&platform, evil.clone(), &ias, &sealed, NexusConfig::default())
            .unwrap();
    let err = fresh.authenticate(&alice).unwrap_err();
    assert!(
        matches!(err, NexusError::Integrity(_) | NexusError::Rollback { .. }),
        "got {err}"
    );
    // The owner still authenticates against the genuine latest supernode?
    // No: the server serves the stale one to everyone — owner detects too.
    let err = fresh.authenticate(&owner).unwrap_err();
    assert!(
        matches!(err, NexusError::Integrity(_) | NexusError::Rollback { .. }),
        "got {err}"
    );
}

#[test]
fn manifest_costs_extra_writes() {
    // The write amplification the paper predicted: quantify it.
    let (_, _, _, _, plain_volume, _) = setup(NexusConfig::default());
    let base = {
        let before = plain_volume.io_stats();
        plain_volume.write_file("f.txt", b"x").unwrap();
        plain_volume.io_stats().delta_since(&before).writes
    };
    let (_, _, _, _, manifest_volume, _) = setup(fresh_config());
    let with_manifest = {
        let before = manifest_volume.io_stats();
        manifest_volume.write_file("f.txt", b"x").unwrap();
        manifest_volume.io_stats().delta_since(&before).writes
    };
    assert!(
        with_manifest > base,
        "manifest must add writes: {with_manifest} vs {base}"
    );
}
