//! Statistical timing-leak classification of the AES lanes.
//!
//! A dudect-style two-class experiment (fixed vs random plaintext under a
//! fixed secret key) over a *deterministic* cost model: each encryption is
//! replayed through `Aes::encrypt_block_trace`, which records every
//! data-dependent table lookup the Fast lane performs, and the trace is
//! charged against a cold [`CacheModel`]. The Fast lane's cost depends on
//! *which* T-table lines the plaintext/key schedule happens to touch, so
//! the two classes separate and Welch's t blows past the 4.5 threshold.
//! The hardened engines — bitsliced and AES-NI alike — perform no
//! data-dependent lookups at all: their traces are empty, their cost
//! constant, so the same experiment reports no leak for either.
//!
//! Because the cost model is deterministic and classes are drawn from the
//! seeded testkit generator, classification is exactly reproducible: this
//! test is CI-stable by construction, not by generous margins.

use nexus_crypto::aes::{Aes, KeySize};
use nexus_crypto::{CryptoBackend, CryptoProfile};
use nexus_testkit::timing::{analyze, CacheModel, Class, LEAK_T_THRESHOLD};

const SEED: u64 = 0x5eed_c7_1ea4;
const PER_CLASS: usize = 2000;

/// Modelled cold-cache cost of one block encryption under `aes`.
///
/// T-table entries (tables 0–3) are 4 bytes wide, the final-round S-box
/// (table 4) 1 byte, so indices scale accordingly before the 64-byte-line
/// mapping.
fn model_cost(aes: &Aes, block: &[u8; 16]) -> f64 {
    let mut b = *block;
    let mut trace = Vec::new();
    aes.encrypt_block_trace(&mut b, &mut trace);
    let mut cache = CacheModel::new();
    for (table, idx) in trace {
        let entry_size = if table == 4 { 1u32 } else { 4u32 };
        cache.access(table, idx as u32 * entry_size);
    }
    cache.cost()
}

fn run(profile: CryptoProfile) -> nexus_testkit::timing::LeakReport {
    run_aes(Aes::with_profile(&[0x3c; 16], KeySize::Aes128, profile))
}

fn run_aes(aes: Aes) -> nexus_testkit::timing::LeakReport {
    let fixed: [u8; 16] = [0xa5; 16];
    analyze(SEED, PER_CLASS, |class, g| {
        let block = match class {
            Class::Fixed => fixed,
            Class::Random => g.bytes::<16>(),
        };
        model_cost(&aes, &block)
    })
}

#[test]
fn table_driven_lane_is_flagged_as_leaking() {
    let report = run(CryptoProfile::Fast);
    assert!(
        report.leaking,
        "table AES should be distinguishable: t = {} (threshold {})",
        report.t, LEAK_T_THRESHOLD
    );
}

#[test]
fn constant_time_lane_passes() {
    let report = run(CryptoProfile::ConstantTime);
    assert!(
        !report.leaking,
        "hardened AES leaked under the model: t = {}",
        report.t
    );
    // Stronger than "below threshold": the hardened lane makes *zero*
    // data-dependent accesses, so both classes cost exactly the same.
    assert_eq!(report.t, 0.0);
}

#[test]
fn bitsliced_lane_passes() {
    let report = run_aes(Aes::with_backend(&[0x3c; 16], KeySize::Aes128, CryptoBackend::Bitsliced));
    assert!(!report.leaking, "bitsliced AES leaked under the model: t = {}", report.t);
    assert_eq!(report.t, 0.0);
}

#[test]
fn hardware_lane_passes() {
    if !nexus_crypto::cpu::hw_accel_available() {
        return;
    }
    let report = run_aes(Aes::with_backend(&[0x3c; 16], KeySize::Aes128, CryptoBackend::HwAccel));
    assert!(!report.leaking, "AES-NI lane leaked under the model: t = {}", report.t);
    // AESENC touches no table at all — the trace is empty, the cost
    // identical across classes.
    assert_eq!(report.t, 0.0);
}

#[test]
fn classification_is_deterministic() {
    let a = run(CryptoProfile::Fast);
    let b = run(CryptoProfile::Fast);
    assert_eq!(a.t, b.t);
    assert!(a.leaking && b.leaking);
}
