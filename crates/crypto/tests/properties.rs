//! Property-based tests for the cryptographic substrate: roundtrips,
//! tamper-rejection, and algebraic identities over arbitrary inputs.
//! Runs on the in-repo `nexus-testkit` harness (hermetic build policy).

use nexus_crypto::ed25519::SigningKey;
use nexus_crypto::gcm::AesGcm;
use nexus_crypto::gcm_siv::AesGcmSiv;
use nexus_crypto::hmac::{hkdf, hmac_sha256};
use nexus_crypto::sha2::{Sha256, Sha512};
use nexus_crypto::x25519;
use nexus_crypto::CryptoBackend;
use nexus_testkit::{shrink, tk_assert, tk_assert_eq, tk_assert_ne, Runner};

const CASES: u32 = 64;

#[test]
fn gcm_roundtrips_any_input() {
    Runner::new("gcm_roundtrips_any_input").cases(CASES).run(
        |g| (g.bytes::<32>(), g.bytes::<12>(), g.byte_vec(0, 128), g.byte_vec(0, 2048)),
        |(key, nonce, aad, pt)| {
            shrink::bytes(pt).into_iter().map(|pt| (*key, *nonce, aad.clone(), pt)).collect()
        },
        |(key, nonce, aad, plaintext)| {
            let gcm = AesGcm::new_256(key);
            let sealed = gcm.seal(nonce, aad, plaintext);
            tk_assert_eq!(gcm.open(nonce, aad, &sealed).unwrap(), *plaintext);
            Ok(())
        },
    );
}

#[test]
fn gcm_rejects_any_single_bitflip() {
    Runner::new("gcm_rejects_any_single_bitflip").cases(CASES).run(
        |g| {
            let pt = g.byte_vec(1, 256);
            let flip_byte = g.u64();
            let flip_bit = g.u8() % 8;
            (g.bytes::<32>(), g.bytes::<12>(), pt, flip_byte, flip_bit)
        },
        shrink::none,
        |(key, nonce, plaintext, flip_byte, flip_bit)| {
            let gcm = AesGcm::new_256(key);
            let mut sealed = gcm.seal(nonce, b"aad", plaintext);
            let idx = (*flip_byte % sealed.len() as u64) as usize;
            sealed[idx] ^= 1 << flip_bit;
            tk_assert!(gcm.open(nonce, b"aad", &sealed).is_err());
            Ok(())
        },
    );
}

#[test]
fn gcm_siv_roundtrips_and_is_deterministic() {
    Runner::new("gcm_siv_roundtrips_and_is_deterministic").cases(CASES).run(
        |g| (g.bytes::<32>(), g.bytes::<12>(), g.byte_vec(0, 512)),
        shrink::none,
        |(key, nonce, plaintext)| {
            let siv = AesGcmSiv::new_256(key);
            let a = siv.seal(nonce, b"ctx", plaintext);
            let b = siv.seal(nonce, b"ctx", plaintext);
            tk_assert_eq!(&a, &b, "SIV is deterministic");
            tk_assert_eq!(siv.open(nonce, b"ctx", &a).unwrap(), *plaintext);
            Ok(())
        },
    );
}

#[test]
fn sha256_incremental_equals_oneshot() {
    Runner::new("sha256_incremental_equals_oneshot").cases(CASES).run(
        |g| {
            let data = g.byte_vec(0, 4096);
            let splits = g.vec(0, 5, |g| g.index(data.len() + 1));
            (data, splits)
        },
        shrink::none,
        |(data, splits)| {
            let mut points = splits.clone();
            points.sort_unstable();
            let mut h = Sha256::new();
            let mut prev = 0usize;
            for p in points {
                h.update(&data[prev..p]);
                prev = p;
            }
            h.update(&data[prev..]);
            tk_assert_eq!(h.finalize(), Sha256::digest(data));
            Ok(())
        },
    );
}

#[test]
fn sha512_incremental_equals_oneshot() {
    Runner::new("sha512_incremental_equals_oneshot").cases(CASES).run(
        |g| {
            let data = g.byte_vec(0, 4096);
            let split = g.index(data.len() + 1);
            (data, split)
        },
        shrink::none,
        |(data, split)| {
            let mut h = Sha512::new();
            h.update(&data[..*split]);
            h.update(&data[*split..]);
            tk_assert_eq!(h.finalize().to_vec(), Sha512::digest(data).to_vec());
            Ok(())
        },
    );
}

#[test]
fn x25519_diffie_hellman_commutes() {
    Runner::new("x25519_diffie_hellman_commutes").cases(CASES).run(
        |g| (g.bytes::<32>(), g.bytes::<32>()),
        shrink::none,
        |(a, b)| {
            let pub_a = x25519::x25519_public_key(a);
            let pub_b = x25519::x25519_public_key(b);
            tk_assert_eq!(x25519::x25519(a, &pub_b), x25519::x25519(b, &pub_a));
            Ok(())
        },
    );
}

#[test]
fn ed25519_signs_and_verifies_any_message() {
    Runner::new("ed25519_signs_and_verifies_any_message").cases(CASES).run(
        |g| (g.bytes::<32>(), g.byte_vec(0, 512)),
        |(seed, msg)| shrink::bytes(msg).into_iter().map(|m| (*seed, m)).collect(),
        |(seed, msg)| {
            let key = SigningKey::from_seed(seed);
            let sig = key.sign(msg);
            tk_assert!(key.verifying_key().verify(msg, &sig).is_ok());
            // Any other message fails (unless identical).
            let mut other = msg.clone();
            other.push(0);
            tk_assert!(key.verifying_key().verify(&other, &sig).is_err());
            Ok(())
        },
    );
}

#[test]
fn ed25519_signature_tamper_rejected() {
    Runner::new("ed25519_signature_tamper_rejected").cases(CASES).run(
        |g| (g.bytes::<32>(), g.byte_vec(0, 64), g.u64(), g.u8() % 8),
        shrink::none,
        |(seed, msg, flip_byte, flip_bit)| {
            let key = SigningKey::from_seed(seed);
            let mut sig = key.sign(msg).to_bytes();
            let idx = (*flip_byte % sig.len() as u64) as usize;
            sig[idx] ^= 1 << flip_bit;
            let sig = nexus_crypto::ed25519::Signature::from_bytes(&sig).unwrap();
            tk_assert!(key.verifying_key().verify(msg, &sig).is_err());
            Ok(())
        },
    );
}

#[test]
fn hmac_is_deterministic_and_key_sensitive() {
    Runner::new("hmac_is_deterministic_and_key_sensitive").cases(CASES).run(
        |g| (g.byte_vec(0, 96), g.byte_vec(0, 256)),
        shrink::none,
        |(key, msg)| {
            let a = hmac_sha256(key, msg);
            let b = hmac_sha256(key, msg);
            tk_assert_eq!(a, b);
            let mut other_key = key.clone();
            other_key.push(1);
            tk_assert_ne!(hmac_sha256(&other_key, msg), a);
            Ok(())
        },
    );
}

#[test]
fn hkdf_output_lengths_are_exact() {
    Runner::new("hkdf_output_lengths_are_exact").cases(CASES).run(
        |g| (g.byte_vec(1, 64), g.usize_in(1, 199)),
        shrink::none,
        |(ikm, len)| {
            let okm = hkdf(b"salt", ikm, b"info", *len);
            tk_assert_eq!(okm.len(), *len);
            // Prefix property: shorter outputs are prefixes of longer ones.
            let longer = hkdf(b"salt", ikm, b"info", len + 13);
            tk_assert_eq!(&longer[..*len], &okm[..]);
            Ok(())
        },
    );
}

/// Every engine available on this machine: the table lane, the portable
/// bitsliced lane, and — where CPUID allows — the AES-NI + PCLMULQDQ lane.
fn all_backends() -> Vec<CryptoBackend> {
    let mut v = vec![CryptoBackend::Table, CryptoBackend::Bitsliced];
    if nexus_crypto::cpu::hw_accel_available() {
        v.push(CryptoBackend::HwAccel);
    }
    v
}

#[test]
fn all_crypto_lanes_are_byte_identical() {
    // Satellite of the hardware lane: every implementation engine (table,
    // bitsliced, intrinsics) must be byte-identical for every
    // key/nonce/AAD/length, including lengths straddling the 8-block
    // (128-byte) batch boundary, and each lane must open what every other
    // lane sealed (cross-lane seal/open regression).
    const BOUNDARY_LENS: [usize; 10] = [0, 1, 15, 16, 17, 112, 127, 128, 129, 257];
    Runner::new("all_crypto_lanes_are_byte_identical").cases(CASES).run(
        |g| {
            let pt = if g.u8() % 2 == 0 {
                let len = BOUNDARY_LENS[(g.u64() % BOUNDARY_LENS.len() as u64) as usize];
                g.byte_vec(len, len)
            } else {
                g.byte_vec(0, 600)
            };
            (g.bytes::<32>(), g.bytes::<12>(), g.byte_vec(0, 64), pt)
        },
        |(key, nonce, aad, pt)| {
            shrink::bytes(pt).into_iter().map(|pt| (*key, *nonce, aad.clone(), pt)).collect()
        },
        |(key, nonce, aad, pt)| {
            let gcms: Vec<AesGcm> =
                all_backends().into_iter().map(|b| AesGcm::with_backend(key, b)).collect();
            let sealed: Vec<Vec<u8>> = gcms.iter().map(|g| g.seal(nonce, aad, pt)).collect();
            for (g, s) in gcms.iter().zip(sealed.iter()) {
                tk_assert_eq!(s, &sealed[0], "GCM lane diverged ({:?})", g.backend());
                // Cross-lane: every lane opens what every other lane sealed.
                for other in &sealed {
                    tk_assert_eq!(g.open(nonce, aad, other).unwrap(), *pt);
                }
            }

            let sivs: Vec<AesGcmSiv> =
                all_backends().into_iter().map(|b| AesGcmSiv::with_backend(key, b)).collect();
            let sealed: Vec<Vec<u8>> = sivs.iter().map(|s| s.seal(nonce, aad, pt)).collect();
            for (siv, s) in sivs.iter().zip(sealed.iter()) {
                tk_assert_eq!(s, &sealed[0], "SIV lane diverged ({:?})", siv.backend());
                for other in &sealed {
                    tk_assert_eq!(siv.open(nonce, aad, other).unwrap(), *pt);
                }
            }
            Ok(())
        },
    );
}
