//! Property-based tests for the cryptographic substrate: roundtrips,
//! tamper-rejection, and algebraic identities over arbitrary inputs.

use proptest::prelude::*;

use nexus_crypto::ed25519::SigningKey;
use nexus_crypto::gcm::AesGcm;
use nexus_crypto::gcm_siv::AesGcmSiv;
use nexus_crypto::hmac::{hkdf, hmac_sha256};
use nexus_crypto::sha2::{Sha256, Sha512};
use nexus_crypto::x25519;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn gcm_roundtrips_any_input(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..128),
        plaintext in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let gcm = AesGcm::new_256(&key);
        let sealed = gcm.seal(&nonce, &aad, &plaintext);
        prop_assert_eq!(gcm.open(&nonce, &aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn gcm_rejects_any_single_bitflip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let gcm = AesGcm::new_256(&key);
        let mut sealed = gcm.seal(&nonce, b"aad", &plaintext);
        let idx = flip_byte.index(sealed.len());
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn gcm_siv_roundtrips_and_is_deterministic(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let siv = AesGcmSiv::new_256(&key);
        let a = siv.seal(&nonce, b"ctx", &plaintext);
        let b = siv.seal(&nonce, b"ctx", &plaintext);
        prop_assert_eq!(&a, &b, "SIV is deterministic");
        prop_assert_eq!(siv.open(&nonce, b"ctx", &a).unwrap(), plaintext);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        splits in prop::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        let mut points: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0usize;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        split in any::<prop::sample::Index>(),
    ) {
        let p = split.index(data.len() + 1);
        let mut h = Sha512::new();
        h.update(&data[..p]);
        h.update(&data[p..]);
        prop_assert_eq!(h.finalize().to_vec(), Sha512::digest(&data).to_vec());
    }

    #[test]
    fn x25519_diffie_hellman_commutes(
        a in prop::array::uniform32(any::<u8>()),
        b in prop::array::uniform32(any::<u8>()),
    ) {
        let pub_a = x25519::x25519_public_key(&a);
        let pub_b = x25519::x25519_public_key(&b);
        prop_assert_eq!(x25519::x25519(&a, &pub_b), x25519::x25519(&b, &pub_a));
    }

    #[test]
    fn ed25519_signs_and_verifies_any_message(
        seed in prop::array::uniform32(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
        // Any other message fails (unless identical).
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(key.verifying_key().verify(&other, &sig).is_err());
    }

    #[test]
    fn ed25519_signature_tamper_rejected(
        seed in prop::array::uniform32(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..64),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let key = SigningKey::from_seed(&seed);
        let mut sig = key.sign(&msg).to_bytes();
        let idx = flip_byte.index(sig.len());
        sig[idx] ^= 1 << flip_bit;
        let sig = nexus_crypto::ed25519::Signature::from_bytes(&sig).unwrap();
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_err());
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in prop::collection::vec(any::<u8>(), 0..96),
        msg in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let a = hmac_sha256(&key, &msg);
        let b = hmac_sha256(&key, &msg);
        prop_assert_eq!(a, b);
        let mut other_key = key.clone();
        other_key.push(1);
        prop_assert_ne!(hmac_sha256(&other_key, &msg), a);
    }

    #[test]
    fn hkdf_output_lengths_are_exact(
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        len in 1usize..200,
    ) {
        let okm = hkdf(b"salt", &ikm, b"info", len);
        prop_assert_eq!(okm.len(), len);
        // Prefix property: shorter outputs are prefixes of longer ones.
        let longer = hkdf(b"salt", &ikm, b"info", len + 13);
        prop_assert_eq!(&longer[..len], &okm[..]);
    }
}
