//! Quick throughput measurement for the AEAD hot path.
fn main() {
    use nexus_crypto::gcm::AesGcm;
    use std::time::Instant;
    let gcm = AesGcm::new_128(&[7u8; 16]);
    let data = vec![0xabu8; 8 * 1024 * 1024];
    let start = Instant::now();
    let mut total = 0usize;
    for i in 0..4 {
        let ct = gcm.seal(&[i as u8; 12], b"", &data);
        total += ct.len();
    }
    let dt = start.elapsed();
    println!("AES-GCM seal: {:.1} MB/s", total as f64 / 1e6 / dt.as_secs_f64());
}
