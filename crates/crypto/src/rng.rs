//! Randomness sources used throughout NEXUS.
//!
//! All key, nonce, and UUID generation funnels through [`SecureRandom`], a
//! thin trait over the `rand` crate so that tests and the SGX simulator can
//! substitute deterministic generators.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A source of cryptographically strong randomness.
///
/// The trait is object-safe so enclaves can hold a `Box<dyn SecureRandom>`.
pub trait SecureRandom: Send {
    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]);

    /// Returns a fresh array of `N` random bytes.
    fn bytes<const N: usize>(&mut self) -> [u8; N]
    where
        Self: Sized,
    {
        let mut out = [0u8; N];
        self.fill(&mut out);
        out
    }
}

/// The default OS-seeded generator.
#[derive(Debug)]
pub struct OsRandom(StdRng);

impl OsRandom {
    /// Creates a generator seeded from the operating system.
    pub fn new() -> OsRandom {
        OsRandom(StdRng::from_entropy())
    }
}

impl Default for OsRandom {
    fn default() -> Self {
        Self::new()
    }
}

impl SecureRandom for OsRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

/// A deterministic generator for tests and reproducible simulations.
#[derive(Debug)]
pub struct SeededRandom(StdRng);

impl SeededRandom {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SeededRandom {
        SeededRandom(StdRng::seed_from_u64(seed))
    }
}

impl SecureRandom for SeededRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        let x: [u8; 32] = a.bytes();
        let y: [u8; 32] = b.bytes();
        assert_eq!(x, y);
    }

    #[test]
    fn seeded_differs_across_seeds() {
        let mut a = SeededRandom::new(1);
        let mut b = SeededRandom::new(2);
        let x: [u8; 32] = a.bytes();
        let y: [u8; 32] = b.bytes();
        assert_ne!(x, y);
    }

    #[test]
    fn os_random_produces_nonzero() {
        let mut r = OsRandom::new();
        let x: [u8; 32] = r.bytes();
        assert_ne!(x, [0u8; 32]);
    }
}
