//! Randomness sources used throughout NEXUS.
//!
//! All key, nonce, and UUID generation funnels through [`SecureRandom`].
//! The module is entirely self-contained — no external crates — matching
//! the workspace's hermetic-build policy and the same minimal-TCB
//! discipline the paper applies to the enclave:
//!
//! - [`OsRandom`] draws from the operating system CSPRNG
//!   (`/dev/urandom`), falling back to a SHA-256 counter DRBG seeded from
//!   ambient entropy when no device is available.
//! - [`SeededRandom`] is a deterministic xoshiro256** generator for tests
//!   and reproducible simulations (workloads, the SGX simulator).
//!
//! Besides raw byte filling, the trait offers the small sampling surface
//! the workload generators need (`next_u64`, bounded integers, unit-range
//! floats), so no call site has to hand-roll rejection sampling.

use std::fs::File;
use std::io::Read;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::sha2::Sha256;

/// A source of cryptographically strong randomness.
///
/// The trait is object-safe so enclaves can hold a `Box<dyn SecureRandom>`.
/// All sampling helpers are defined in terms of [`SecureRandom::fill`], so
/// they work through `dyn SecureRandom` too.
pub trait SecureRandom: Send {
    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]);

    /// Returns a fresh array of `N` random bytes.
    fn bytes<const N: usize>(&mut self) -> [u8; N]
    where
        Self: Sized,
    {
        let mut out = [0u8; N];
        self.fill(&mut out);
        out
    }

    /// Returns a uniformly random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill(&mut buf);
        u64::from_le_bytes(buf)
    }

    /// Returns a uniformly random `u64` in `[0, bound)` via rejection
    /// sampling (no modulo bias). `bound` must be nonzero.
    fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        // Rejection zone: multiples of `bound` fit `zone` times in 2^64.
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly random `usize` in `[0, bound)`.
    fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Returns a uniformly random `u64` in `[lo, hi)`.
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        lo + self.u64_below(hi - lo)
    }

    /// Returns a uniformly random `usize` in `[lo, hi)`.
    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Returns a uniformly random `f64` in `[0, 1)` with 53 bits of
    /// precision.
    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly random `f64` in `[lo, hi)`.
    fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "f64_range: empty range {lo}..{hi}");
        lo + self.f64_unit() * (hi - lo)
    }
}

enum OsSource {
    /// The platform CSPRNG device, kept open across fills.
    Device(File),
    /// SHA-256 counter DRBG over ambient entropy — used only when the
    /// device cannot be opened (e.g. exotic sandboxes).
    Fallback { state: [u8; 32], counter: u64 },
}

/// The default OS-backed generator.
pub struct OsRandom(OsSource);

impl std::fmt::Debug for OsRandom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            OsSource::Device(_) => f.write_str("OsRandom(/dev/urandom)"),
            OsSource::Fallback { .. } => f.write_str("OsRandom(drbg-fallback)"),
        }
    }
}

impl OsRandom {
    /// Creates a generator backed by the operating system.
    pub fn new() -> OsRandom {
        match File::open("/dev/urandom") {
            Ok(f) => OsRandom(OsSource::Device(f)),
            Err(_) => OsRandom(OsSource::Fallback { state: ambient_seed(), counter: 0 }),
        }
    }
}

/// Gathers whatever entropy std exposes without OS-specific syscalls:
/// wall-clock nanos, monotonic timer jitter, thread id, and ASLR-shifted
/// addresses, all mixed through SHA-256.
fn ambient_seed() -> [u8; 32] {
    let mut h = Sha256::new();
    if let Ok(d) = SystemTime::now().duration_since(UNIX_EPOCH) {
        h.update(&d.as_nanos().to_le_bytes());
    }
    let t0 = std::time::Instant::now();
    h.update(&format!("{:?}", std::thread::current().id()).into_bytes());
    let stack_probe = 0u8;
    h.update(&(&stack_probe as *const u8 as usize).to_le_bytes());
    h.update(&(ambient_seed as fn() -> [u8; 32] as usize).to_le_bytes());
    h.update(&t0.elapsed().as_nanos().to_le_bytes());
    h.finalize()
}

impl Default for OsRandom {
    fn default() -> Self {
        Self::new()
    }
}

impl SecureRandom for OsRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        match &mut self.0 {
            OsSource::Device(f) => {
                if f.read_exact(dest).is_ok() {
                    return;
                }
                // Device went away mid-stream; degrade to the DRBG.
                self.0 = OsSource::Fallback { state: ambient_seed(), counter: 0 };
                self.fill(dest);
            }
            OsSource::Fallback { state, counter } => {
                for chunk in dest.chunks_mut(32) {
                    let mut h = Sha256::new();
                    h.update(&state[..]);
                    h.update(&counter.to_le_bytes());
                    *counter += 1;
                    let block = h.finalize();
                    chunk.copy_from_slice(&block[..chunk.len()]);
                }
                // Ratchet the state so past outputs cannot be recomputed.
                let mut h = Sha256::new();
                h.update(&state[..]);
                h.update(b"ratchet");
                *state = h.finalize();
            }
        }
    }
}

/// A deterministic generator for tests and reproducible simulations.
///
/// xoshiro256** seeded through SplitMix64 — the standard construction that
/// maps any 64-bit seed to a full 256-bit state with no all-zero risk.
/// Not suitable for key material; use [`OsRandom`] for anything secret.
#[derive(Debug, Clone)]
pub struct SeededRandom {
    s: [u64; 4],
}

impl SeededRandom {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SeededRandom {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SeededRandom { s: [next(), next(), next(), next()] }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SecureRandom for SeededRandom {
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        let x: [u8; 32] = a.bytes();
        let y: [u8; 32] = b.bytes();
        assert_eq!(x, y);
    }

    #[test]
    fn seeded_differs_across_seeds() {
        let mut a = SeededRandom::new(1);
        let mut b = SeededRandom::new(2);
        let x: [u8; 32] = a.bytes();
        let y: [u8; 32] = b.bytes();
        assert_ne!(x, y);
    }

    #[test]
    fn seeded_fill_matches_next_u64_stream() {
        // Odd-length fills must consume whole words in order, so a byte
        // stream is a prefix-consistent view of the u64 stream.
        let mut a = SeededRandom::new(7);
        let mut b = SeededRandom::new(7);
        let mut buf = [0u8; 24];
        a.fill(&mut buf);
        for chunk in buf.chunks(8) {
            assert_eq!(chunk, &b.next_u64().to_le_bytes()[..]);
        }
    }

    #[test]
    fn os_random_produces_nonzero() {
        let mut r = OsRandom::new();
        let x: [u8; 32] = r.bytes();
        assert_ne!(x, [0u8; 32]);
    }

    #[test]
    fn drbg_fallback_streams_and_ratchets() {
        let mut r = OsRandom(OsSource::Fallback { state: [7u8; 32], counter: 0 });
        let a: [u8; 48] = r.bytes();
        let b: [u8; 48] = r.bytes();
        assert_ne!(a, b);
        // Distinct counter blocks within one fill differ too.
        assert_ne!(a[..16], a[32..48]);
    }

    #[test]
    fn u64_below_is_in_range_and_unbiased_at_edges() {
        let mut r = SeededRandom::new(3);
        for bound in [1u64, 2, 3, 7, 1 << 33, u64::MAX] {
            for _ in 0..64 {
                assert!(r.u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_helpers_respect_bounds() {
        let mut r = SeededRandom::new(11);
        for _ in 0..256 {
            let v = r.range_usize(10, 20);
            assert!((10..20).contains(&v));
            let f = r.f64_range(0.1, 3.0);
            assert!((0.1..3.0).contains(&f));
            let u = r.f64_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn helpers_work_through_dyn_trait_object() {
        let mut boxed: Box<dyn SecureRandom> = Box::new(SeededRandom::new(5));
        let v = boxed.u64_below(10);
        assert!(v < 10);
    }
}
