//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! NEXUS uses AES-GCM for all bulk metadata and file-chunk encryption: the
//! protected section of every metadata object and every 1 MB file chunk is
//! sealed with a fresh key and IV, with the unprotected sections passed as
//! additional authenticated data.
//!
//! # Examples
//!
//! ```
//! use nexus_crypto::gcm::AesGcm;
//!
//! let gcm = AesGcm::new_128(&[7u8; 16]);
//! let sealed = gcm.seal(&[1u8; 12], b"header", b"secret payload");
//! let opened = gcm.open(&[1u8; 12], b"header", &sealed).unwrap();
//! assert_eq!(opened, b"secret payload");
//! ```

use crate::aes::{Aes, KeySize};
use crate::ct::ct_eq;
use crate::ghash_ct::ghash_mul_ct;
use crate::{AeadError, CryptoBackend, CryptoProfile};

/// Length in bytes of the GCM authentication tag.
pub const TAG_LEN: usize = 16;
/// Length in bytes of the GCM nonce (IV).
pub const NONCE_LEN: usize = 12;

/// One application of the GHASH shift map (multiplication by `x` in the
/// bit-reflected representation of SP 800-38D §6.3).
#[inline]
fn ghash_shift(v: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    if v & 1 == 1 {
        (v >> 1) ^ R
    } else {
        v >> 1
    }
}

/// One Shoup 4-bit lookup table: `table[p][nib]` is the field product of
/// the key with a nibble placed at bit position `4p` of the multiplicand,
/// so a full multiplication is 32 lookups and XORs. Shared with the
/// POLYVAL batch path in [`crate::gcm_siv`], which works in the same
/// GHASH-domain representation.
pub(crate) type ShoupTable = [[u128; 16]; 32];

/// Minimum per-update payload before the 8-block batched GHASH (and its
/// lazily built H-power tables) pays for itself. Metadata objects stay on
/// the table-light scalar path; 1 MB file chunks always batch.
pub(crate) const GHASH_BATCH_MIN: usize = 8 * 1024;

/// Expands `h` into a [`ShoupTable`].
pub(crate) fn build_table(h: u128) -> Box<ShoupTable> {
    // In the bitwise reference, bit i (LSB = 0) of the multiplicand
    // selects H shifted (127 - i) times.
    let mut shifted = [0u128; 128];
    shifted[0] = h;
    for k in 1..128 {
        shifted[k] = ghash_shift(shifted[k - 1]);
    }
    let mut table = Box::new([[0u128; 16]; 32]);
    for p in 0..32 {
        for nib in 0..16usize {
            let mut acc = 0u128;
            for b in 0..4 {
                if (nib >> b) & 1 == 1 {
                    acc ^= shifted[127 - (4 * p + b)];
                }
            }
            table[p][nib] = acc;
        }
    }
    table
}

/// Field multiplication of `x` by the key expanded into `table`.
#[inline]
pub(crate) fn table_mul(table: &ShoupTable, x: u128) -> u128 {
    let mut z = 0u128;
    for p in 0..32 {
        z ^= table[p][((x >> (4 * p)) & 0xf) as usize];
    }
    z
}

/// A GHASH key in one of three lanes. The Table lane expands H into a
/// Shoup table (plus lazily built tables for H^1..H^8 powering the
/// 8-blocks-per-pass batched update); the constant-time lanes keep only
/// the powers of H and multiply either through PCLMULQDQ with aggregated
/// reduction ([`crate::ghash_clmul`]) or the portable masked carryless
/// path ([`crate::ghash_ct`]). All key material is volatilely zeroized on
/// drop.
#[derive(Clone)]
struct GhashKey {
    h: u128,
    /// `hpow[k]` is H^(k+1); index 7 is H^8 (used by every lane's batch).
    hpow: [u128; 8],
    /// Shoup table for H — `Some` only in the Table lane.
    table: Option<Box<ShoupTable>>,
    /// Multiplications run through PCLMULQDQ (set only when the paired
    /// AES key dispatched to [`CryptoBackend::HwAccel`], so the two always
    /// share one CPUID decision).
    hw: bool,
    /// `batch[k]` is the table for H^(k+1); Table lane only, built lazily.
    batch: std::sync::OnceLock<Box<[ShoupTable; 8]>>,
}

/// One constant-time field multiplication on whichever engine the key
/// selected: PCLMULQDQ when `hw`, the masked portable multiply otherwise.
#[inline]
fn ct_mul(hw: bool, x: u128, y: u128) -> u128 {
    #[cfg(target_arch = "x86_64")]
    if hw {
        return crate::ghash_clmul::ghash_mul_hw(x, y);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = hw;
    ghash_mul_ct(x, y)
}

impl std::fmt::Debug for GhashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GhashKey { .. }")
    }
}

impl GhashKey {
    fn new(h: u128, backend: CryptoBackend) -> GhashKey {
        let table = (backend == CryptoBackend::Table).then(|| build_table(h));
        let hw = backend == CryptoBackend::HwAccel;
        let mut hpow = [0u128; 8];
        hpow[0] = h;
        for k in 1..8 {
            hpow[k] = match &table {
                Some(t) => table_mul(t, hpow[k - 1]),
                None => ct_mul(hw, hpow[k - 1], h),
            };
        }
        GhashKey { h, hpow, table, hw, batch: std::sync::OnceLock::new() }
    }

    /// Field multiplication of `x` by H.
    #[inline]
    fn mul(&self, x: u128) -> u128 {
        match &self.table {
            Some(t) => table_mul(t, x),
            None => ct_mul(self.hw, x, self.h),
        }
    }

    /// Tables for H^1..H^8, built on first bulk use (Table lane only).
    fn batch_tables(&self) -> &[ShoupTable; 8] {
        self.batch.get_or_init(|| {
            let mut tables = Box::new([[[0u128; 16]; 32]; 8]);
            for (k, h) in self.hpow.iter().enumerate() {
                tables[k] = *build_table(*h);
            }
            tables
        })
    }

    /// Volatile best-effort clear of H, its powers, and every derived
    /// table (also invoked by `Drop`).
    fn wipe(&mut self) {
        crate::ct::zeroize_u128(std::slice::from_mut(&mut self.h));
        crate::ct::zeroize_u128(&mut self.hpow);
        if let Some(t) = &mut self.table {
            crate::ct::zeroize_u128(t.as_flattened_mut());
        }
        if let Some(mut b) = self.batch.take() {
            for t in b.iter_mut() {
                crate::ct::zeroize_u128(t.as_flattened_mut());
            }
        }
    }
}

impl Drop for GhashKey {
    fn drop(&mut self) {
        self.wipe();
    }
}

/// Incremental GHASH state.
#[derive(Debug)]
struct Ghash<'k> {
    key: &'k GhashKey,
    acc: u128,
    /// When false, force the scalar one-block-at-a-time path (reference
    /// implementation used for differential testing).
    batch_enabled: bool,
}

impl<'k> Ghash<'k> {
    fn new(key: &'k GhashKey) -> Ghash<'k> {
        Ghash { key, acc: 0, batch_enabled: true }
    }

    fn new_scalar(key: &'k GhashKey) -> Ghash<'k> {
        Ghash { key, acc: 0, batch_enabled: false }
    }

    /// Absorbs `data`, zero-padding the final partial block.
    ///
    /// Large updates run 8 blocks per pass: the Horner recurrence
    /// `Y' = (Y ^ X1)·H^8 ^ X2·H^7 ^ … ^ X8·H` turns eight *dependent*
    /// multiplications into eight independent table multiplications whose
    /// loads and XOR trees overlap.
    fn update_padded(&mut self, data: &[u8]) {
        let mut rest = data;
        if self.batch_enabled && data.len() >= GHASH_BATCH_MIN {
            rest = self.update_batched(data);
        }
        let mut chunks = rest.chunks_exact(16);
        for chunk in &mut chunks {
            let block: [u8; 16] = chunk.try_into().unwrap();
            self.acc = self.key.mul(self.acc ^ u128::from_be_bytes(block));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut block = [0u8; 16];
            block[..tail.len()].copy_from_slice(tail);
            self.acc = self.key.mul(self.acc ^ u128::from_be_bytes(block));
        }
    }

    /// The 8-blocks-per-pass body of [`Ghash::update_padded`]; returns the
    /// unprocessed remainder (< 128 bytes). On the PCLMULQDQ lane the
    /// whole pass is one aggregated reduction: eight unreduced 256-bit
    /// products XOR-summed, one pentanomial fold.
    fn update_batched<'a>(&mut self, data: &'a [u8]) -> &'a [u8] {
        #[cfg(target_arch = "x86_64")]
        if self.key.hw {
            let hs: [u128; 8] = std::array::from_fn(|j| self.key.hpow[7 - j]);
            let mut batches = data.chunks_exact(128);
            for batch in &mut batches {
                let mut xs = [0u128; 8];
                for (x, block) in xs.iter_mut().zip(batch.chunks_exact(16)) {
                    *x = u128::from_be_bytes(block.try_into().unwrap());
                }
                xs[0] ^= self.acc;
                self.acc = crate::ghash_clmul::ghash_mul_sum_hw(&xs, &hs);
            }
            return batches.remainder();
        }
        let tables = self.key.table.is_some().then(|| self.key.batch_tables());
        let mut batches = data.chunks_exact(128);
        for batch in &mut batches {
            let mut z = 0u128;
            for j in 0..8 {
                let block: [u8; 16] = batch[j * 16..j * 16 + 16].try_into().unwrap();
                let mut x = u128::from_be_bytes(block);
                if j == 0 {
                    x ^= self.acc;
                }
                z ^= match tables {
                    Some(t) => table_mul(&t[7 - j], x),
                    None => ghash_mul_ct(x, self.key.hpow[7 - j]),
                };
            }
            self.acc = z;
        }
        batches.remainder()
    }

    fn update_block(&mut self, block: &[u8; 16]) {
        self.acc = self.key.mul(self.acc ^ u128::from_be_bytes(*block));
    }

    fn finalize(self) -> [u8; 16] {
        self.acc.to_be_bytes()
    }
}

/// An AES-GCM sealing/opening context bound to one key.
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    /// GHASH subkey H = AES_K(0^128), expanded into lookup tables.
    h: GhashKey,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AesGcm { .. }")
    }
}

impl AesGcm {
    /// Creates a context from a raw key of 16 or 32 bytes, under the
    /// default profile ([`CryptoProfile::ConstantTime`]).
    ///
    /// # Panics
    ///
    /// Panics if the key is not 16 or 32 bytes long.
    pub fn new(key: &[u8]) -> AesGcm {
        AesGcm::with_profile(key, CryptoProfile::default())
    }

    /// Creates a context in the given lane; the ConstantTime lane runs on
    /// AES-NI + PCLMULQDQ when the CPU has them and bitsliced/masked
    /// multiplies otherwise, with output byte-identical to the Fast lane
    /// in every case.
    ///
    /// # Panics
    ///
    /// Panics if the key is not 16 or 32 bytes long.
    pub fn with_profile(key: &[u8], profile: CryptoProfile) -> AesGcm {
        AesGcm::with_backend(key, crate::cpu::backend_for(profile))
    }

    /// Creates a context on one *specific* engine, bypassing CPU dispatch
    /// (see [`Aes::with_backend`]).
    ///
    /// # Panics
    ///
    /// Panics if the key is not 16 or 32 bytes long, or if
    /// [`CryptoBackend::HwAccel`] is requested without hardware support.
    pub fn with_backend(key: &[u8], backend: CryptoBackend) -> AesGcm {
        let size = match key.len() {
            16 => KeySize::Aes128,
            32 => KeySize::Aes256,
            n => panic!("AES-GCM key must be 16 or 32 bytes, got {n}"),
        };
        let aes = Aes::with_backend(key, size, backend);
        let mut h_block = [0u8; 16];
        aes.encrypt_block(&mut h_block);
        // Key the GHASH lane off the cipher's resolved backend so AES and
        // GHASH never split across engines.
        AesGcm { h: GhashKey::new(u128::from_be_bytes(h_block), aes.backend()), aes }
    }

    /// The profile this context was created for.
    pub fn profile(&self) -> CryptoProfile {
        self.aes.profile()
    }

    /// The concrete engine this context dispatches to.
    pub fn backend(&self) -> CryptoBackend {
        self.aes.backend()
    }

    /// Creates an AES-128-GCM context.
    pub fn new_128(key: &[u8; 16]) -> AesGcm {
        AesGcm::new(key)
    }

    /// Creates an AES-256-GCM context.
    pub fn new_256(key: &[u8; 32]) -> AesGcm {
        AesGcm::new(key)
    }

    /// Derives the pre-counter block J0 from a 96-bit nonce.
    fn j0(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// CTR-mode keystream application starting at counter block `ctr`
    /// (already incremented past J0).
    ///
    /// Runs eight counter blocks through [`Aes::encrypt_blocks8`] per pass
    /// so the independent AES pipelines overlap; the tail (< 128 bytes)
    /// falls back to single blocks.
    fn ctr_xor(&self, mut ctr: [u8; 16], data: &mut [u8]) {
        let mut batches = data.chunks_exact_mut(128);
        for batch in &mut batches {
            let mut ks = [[0u8; 16]; 8];
            for block in ks.iter_mut() {
                inc32(&mut ctr);
                *block = ctr;
            }
            self.aes.encrypt_blocks8(&mut ks);
            for (b, k) in batch.iter_mut().zip(ks.as_flattened()) {
                *b ^= k;
            }
        }
        self.ctr_xor_tail(&mut ctr, batches.into_remainder());
    }

    /// Reference single-block CTR path, also used for the final partial
    /// batch. `ctr` is advanced in place.
    fn ctr_xor_tail(&self, ctr: &mut [u8; 16], data: &mut [u8]) {
        for chunk in data.chunks_mut(16) {
            inc32(ctr);
            let mut ks = *ctr;
            self.aes.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        self.tag_inner(j0, aad, ciphertext, true)
    }

    fn tag_inner(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8], batch: bool) -> [u8; 16] {
        let mut ghash = if batch { Ghash::new(&self.h) } else { Ghash::new_scalar(&self.h) };
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        ghash.update_block(&len_block);
        let mut tag = ghash.finalize();
        let mut e_j0 = *j0;
        self.aes.encrypt_block(&mut e_j0);
        for (t, e) in tag.iter_mut().zip(e_j0.iter()) {
            *t ^= e;
        }
        tag
    }

    /// Encrypts `plaintext`, authenticating `aad`, returning the ciphertext
    /// and a detached 16-byte tag.
    pub fn seal_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; TAG_LEN]) {
        let j0 = self.j0(nonce);
        let mut ct = plaintext.to_vec();
        self.ctr_xor(j0, &mut ct);
        let tag = self.tag(&j0, aad, &ct);
        (ct, tag)
    }

    /// Reference implementation of [`AesGcm::seal_detached`] that bypasses
    /// both the 8-block CTR batch and the batched GHASH. Kept for
    /// differential tests and the scalar-vs-batched benchmark; not part of
    /// the public API surface.
    #[doc(hidden)]
    pub fn seal_detached_scalar(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; TAG_LEN]) {
        let j0 = self.j0(nonce);
        let mut ct = plaintext.to_vec();
        let mut ctr = j0;
        self.ctr_xor_tail(&mut ctr, &mut ct);
        let tag = self.tag_inner(&j0, aad, &ct, false);
        (ct, tag)
    }

    /// Encrypts `plaintext` and returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_to(nonce, aad, plaintext, &mut out);
        out
    }

    /// Encrypts `plaintext` and appends `ciphertext || tag` to `out`,
    /// reserving exactly once. This is the allocation-lean path the chunk
    /// loop uses: [`AesGcm::seal`] on a 1 MB chunk would otherwise grow an
    /// exactly-sized ciphertext vector just to push the 16-byte tag,
    /// copying the whole chunk a second time.
    pub fn seal_to(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) {
        out.reserve_exact(plaintext.len() + TAG_LEN);
        let start = out.len();
        out.extend_from_slice(plaintext);
        let j0 = self.j0(nonce);
        self.ctr_xor(j0, &mut out[start..]);
        let tag = self.tag(&j0, aad, &out[start..]);
        out.extend_from_slice(&tag);
    }

    /// Verifies the detached `tag` and decrypts `ciphertext`.
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] when the tag does not match; no plaintext is
    /// released in that case.
    pub fn open_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<Vec<u8>, AeadError> {
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(AeadError);
        }
        let mut pt = ciphertext.to_vec();
        self.ctr_xor(j0, &mut pt);
        Ok(pt)
    }

    /// Opens a `ciphertext || tag` buffer produced by [`AesGcm::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] if the buffer is shorter than a tag or the tag
    /// does not verify.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let tag: [u8; TAG_LEN] = tag.try_into().expect("split length");
        self.open_detached(nonce, aad, ct, &tag)
    }

    /// Opens a `ciphertext || tag` buffer, appending the plaintext to
    /// `out` with a single exact reservation (the decrypt counterpart of
    /// [`AesGcm::seal_to`]).
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] if the buffer is shorter than a tag or the tag
    /// does not verify; `out` is untouched in that case.
    pub fn open_to(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let tag: [u8; TAG_LEN] = tag.try_into().expect("split length");
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ct);
        if !ct_eq(&expected, &tag) {
            return Err(AeadError);
        }
        out.reserve_exact(ct.len());
        let start = out.len();
        out.extend_from_slice(ct);
        self.ctr_xor(j0, &mut out[start..]);
        Ok(())
    }
}

impl crate::ct::ZeroizeOnDrop for AesGcm {}

/// Increments the last 32 bits of a counter block (big-endian).
fn inc32(block: &mut [u8; 16]) {
    let mut ctr = u32::from_be_bytes(block[12..16].try_into().unwrap());
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{hex, unhex};

    /// Every engine testable on this host: table and bitsliced always,
    /// the AES-NI/PCLMULQDQ lane where the CPU has it.
    fn backends() -> Vec<CryptoBackend> {
        let mut v = vec![CryptoBackend::Table, CryptoBackend::Bitsliced];
        if crate::cpu::hw_accel_available() {
            v.push(CryptoBackend::HwAccel);
        }
        v
    }

    /// Every vector runs under all lanes: each must reproduce the NIST
    /// ciphertext and tag bit-for-bit.
    fn check(key: &str, iv: &str, pt: &str, aad: &str, ct: &str, tag: &str) {
        for backend in backends() {
            let gcm = AesGcm::with_backend(&unhex(key), backend);
            let nonce: [u8; 12] = unhex(iv).try_into().unwrap();
            let (c, t) = gcm.seal_detached(&nonce, &unhex(aad), &unhex(pt));
            assert_eq!(hex(&c), ct, "ciphertext ({backend:?})");
            assert_eq!(hex(&t), tag, "tag ({backend:?})");
            let p = gcm.open_detached(&nonce, &unhex(aad), &c, &t).unwrap();
            assert_eq!(hex(&p), pt, "roundtrip ({backend:?})");
        }
    }

    #[test]
    fn nist_case_1_empty() {
        check(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "58e2fccefa7e3061367f1d57a4e7455a",
        );
    }

    #[test]
    fn nist_case_2_one_block() {
        check(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "00000000000000000000000000000000",
            "",
            "0388dace60b6a392f328c2b971b2fe78",
            "ab6e47d42cec13bdf53a67b21257bddf",
        );
    }

    #[test]
    fn nist_case_3_four_blocks() {
        check(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            "",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            "4d5c2af327cd64a62cf35abd2ba6fab4",
        );
    }

    #[test]
    fn nist_case_4_with_aad() {
        check(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            "5bc94fbc3221a5db94fae95ae7121a47",
        );
    }

    #[test]
    fn nist_case_13_aes256_empty() {
        check(
            "0000000000000000000000000000000000000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "530f8afbc74536b9a963b4f1c4cb738b",
        );
    }

    #[test]
    fn nist_case_14_aes256_one_block() {
        check(
            "0000000000000000000000000000000000000000000000000000000000000000",
            "000000000000000000000000",
            "00000000000000000000000000000000",
            "",
            "cea7403d4d606b6e074ec5d3baf39d18",
            "d0d1c8a799996bf0265b98b5d48ab919",
        );
    }

    #[test]
    fn tamper_detection() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        let nonce = [3u8; 12];
        let mut sealed = gcm.seal(&nonce, b"aad", b"hello world");
        sealed[0] ^= 1;
        assert!(gcm.open(&nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn wrong_aad_rejected() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        let nonce = [3u8; 12];
        let sealed = gcm.seal(&nonce, b"aad", b"hello world");
        assert!(gcm.open(&nonce, b"wrong", &sealed).is_err());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        let sealed = gcm.seal(&[3u8; 12], b"", b"hello world");
        assert!(gcm.open(&[4u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn short_buffer_rejected() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        assert!(gcm.open(&[0u8; 12], b"", &[0u8; 15]).is_err());
    }

    #[test]
    fn seal_open_various_lengths() {
        let gcm = AesGcm::new_256(&[0xab; 32]);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let nonce = [len as u8; 12];
            let sealed = gcm.seal(&nonce, b"x", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(gcm.open(&nonce, b"x", &sealed).unwrap(), pt);
        }
    }

    /// The batched paths (8-block CTR, 8-block GHASH above
    /// `GHASH_BATCH_MIN`) must agree bit-for-bit with the scalar reference
    /// at every alignment: multiples of 128, stragglers, partial blocks,
    /// and sizes large enough to cross the GHASH batching threshold.
    #[test]
    fn batched_matches_scalar_reference() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0x6cc5);
        for key in [vec![0x11u8; 16], vec![0x22u8; 32]] {
            let gcm = AesGcm::new(&key);
            for len in
                [0usize, 1, 16, 127, 128, 129, 255, 256, 1000, 8191, 8192, 8193, 8320, 100_000]
            {
                let mut pt = vec![0u8; len];
                rng.fill(&mut pt);
                let mut nonce = [0u8; 12];
                rng.fill(&mut nonce);
                let (ct_fast, tag_fast) = gcm.seal_detached(&nonce, b"aad", &pt);
                let (ct_ref, tag_ref) = gcm.seal_detached_scalar(&nonce, b"aad", &pt);
                assert_eq!(ct_fast, ct_ref, "ciphertext diverged at len {len}");
                assert_eq!(tag_fast, tag_ref, "tag diverged at len {len}");
                assert_eq!(gcm.open(&nonce, b"aad", &gcm.seal(&nonce, b"aad", &pt)).unwrap(), pt);
            }
        }
    }

    /// Every lane must agree bit-for-bit at every alignment, including
    /// lengths that cross the 8-block CTR batch and `GHASH_BATCH_MIN`
    /// thresholds (the CT lanes batch GHASH through powers of H too —
    /// aggregated reduction on the PCLMULQDQ lane).
    #[test]
    fn constant_time_lanes_match_fast_lane() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0xc7);
        for key in [vec![0x33u8; 16], vec![0x44u8; 32]] {
            let fast = AesGcm::with_backend(&key, CryptoBackend::Table);
            let lanes: Vec<AesGcm> = backends()
                .into_iter()
                .filter(|&b| b != CryptoBackend::Table)
                .map(|b| AesGcm::with_backend(&key, b))
                .collect();
            for len in [0usize, 1, 16, 127, 128, 129, 1000, 8191, 8192, 8193, 20_000] {
                let mut pt = vec![0u8; len];
                rng.fill(&mut pt);
                let mut nonce = [0u8; 12];
                rng.fill(&mut nonce);
                let (ct_f, tag_f) = fast.seal_detached(&nonce, b"aad", &pt);
                for hard in &lanes {
                    let backend = hard.backend();
                    let (ct_c, tag_c) = hard.seal_detached(&nonce, b"aad", &pt);
                    assert_eq!(ct_f, ct_c, "ciphertext diverged at len {len} ({backend:?})");
                    assert_eq!(tag_f, tag_c, "tag diverged at len {len} ({backend:?})");
                    // Cross-lane open: sealed Fast, opened hardened.
                    assert_eq!(hard.open_detached(&nonce, b"aad", &ct_f, &tag_f).unwrap(), pt);
                }
            }
        }
    }

    #[test]
    fn ghash_key_wipe_clears_tables_and_powers() {
        for backend in backends() {
            let mut key = GhashKey::new(0x1234_5678_9abc_def0_u128, backend);
            if key.table.is_some() {
                key.batch_tables();
            }
            key.wipe();
            assert_eq!(key.h, 0);
            assert_eq!(key.hpow, [0u128; 8]);
            if let Some(t) = &key.table {
                assert!(t.iter().all(|row| row.iter().all(|&v| v == 0)));
            }
            assert!(key.batch.get().is_none(), "batch tables dropped on wipe");
        }
    }

    #[test]
    fn seal_to_open_to_append_in_place() {
        let gcm = AesGcm::new_128(&[5u8; 16]);
        let nonce = [8u8; 12];
        let pt: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let mut sealed = b"prefix-".to_vec();
        gcm.seal_to(&nonce, b"aad", &pt, &mut sealed);
        assert_eq!(&sealed[..7], b"prefix-");
        assert_eq!(sealed[7..], gcm.seal(&nonce, b"aad", &pt)[..]);

        let mut opened = b"head-".to_vec();
        gcm.open_to(&nonce, b"aad", &sealed[7..], &mut opened).unwrap();
        assert_eq!(&opened[..5], b"head-");
        assert_eq!(&opened[5..], &pt[..]);

        // A bad tag must leave the output buffer untouched.
        let mut tampered = sealed[7..].to_vec();
        *tampered.last_mut().unwrap() ^= 1;
        let mut out = b"keep".to_vec();
        assert!(gcm.open_to(&nonce, b"aad", &tampered, &mut out).is_err());
        assert_eq!(out, b"keep");
        assert!(gcm.open_to(&nonce, b"aad", &[0u8; 15], &mut out).is_err());
        assert_eq!(out, b"keep");
    }
}
