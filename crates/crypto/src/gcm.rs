//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! NEXUS uses AES-GCM for all bulk metadata and file-chunk encryption: the
//! protected section of every metadata object and every 1 MB file chunk is
//! sealed with a fresh key and IV, with the unprotected sections passed as
//! additional authenticated data.
//!
//! # Examples
//!
//! ```
//! use nexus_crypto::gcm::AesGcm;
//!
//! let gcm = AesGcm::new_128(&[7u8; 16]);
//! let sealed = gcm.seal(&[1u8; 12], b"header", b"secret payload");
//! let opened = gcm.open(&[1u8; 12], b"header", &sealed).unwrap();
//! assert_eq!(opened, b"secret payload");
//! ```

use crate::aes::{Aes, KeySize};
use crate::ct::ct_eq;
use crate::AeadError;

/// Length in bytes of the GCM authentication tag.
pub const TAG_LEN: usize = 16;
/// Length in bytes of the GCM nonce (IV).
pub const NONCE_LEN: usize = 12;

/// One application of the GHASH shift map (multiplication by `x` in the
/// bit-reflected representation of SP 800-38D §6.3).
#[inline]
fn ghash_shift(v: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    if v & 1 == 1 {
        (v >> 1) ^ R
    } else {
        v >> 1
    }
}

/// A GHASH key expanded into Shoup 4-bit tables: `table[p][nib]` is the
/// field product of H with a nibble placed at bit position `4p` of the
/// multiplicand, so a full multiplication is 32 lookups and XORs.
#[derive(Clone)]
struct GhashKey {
    table: Box<[[u128; 16]; 32]>,
}

impl std::fmt::Debug for GhashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GhashKey { .. }")
    }
}

impl GhashKey {
    fn new(h: u128) -> GhashKey {
        // In the bitwise reference, bit i (LSB = 0) of the multiplicand
        // selects H shifted (127 - i) times.
        let mut shifted = [0u128; 128];
        shifted[0] = h;
        for k in 1..128 {
            shifted[k] = ghash_shift(shifted[k - 1]);
        }
        let mut table = Box::new([[0u128; 16]; 32]);
        for p in 0..32 {
            for nib in 0..16usize {
                let mut acc = 0u128;
                for b in 0..4 {
                    if (nib >> b) & 1 == 1 {
                        acc ^= shifted[127 - (4 * p + b)];
                    }
                }
                table[p][nib] = acc;
            }
        }
        GhashKey { table }
    }

    /// Field multiplication of `x` by the expanded key.
    #[inline]
    fn mul(&self, x: u128) -> u128 {
        let mut z = 0u128;
        for p in 0..32 {
            z ^= self.table[p][((x >> (4 * p)) & 0xf) as usize];
        }
        z
    }
}

/// Incremental GHASH state.
#[derive(Debug)]
struct Ghash<'k> {
    key: &'k GhashKey,
    acc: u128,
}

impl<'k> Ghash<'k> {
    fn new(key: &'k GhashKey) -> Ghash<'k> {
        Ghash { key, acc: 0 }
    }

    /// Absorbs `data`, zero-padding the final partial block.
    fn update_padded(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            let block: [u8; 16] = chunk.try_into().unwrap();
            self.acc = self.key.mul(self.acc ^ u128::from_be_bytes(block));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut block = [0u8; 16];
            block[..rest.len()].copy_from_slice(rest);
            self.acc = self.key.mul(self.acc ^ u128::from_be_bytes(block));
        }
    }

    fn update_block(&mut self, block: &[u8; 16]) {
        self.acc = self.key.mul(self.acc ^ u128::from_be_bytes(*block));
    }

    fn finalize(self) -> [u8; 16] {
        self.acc.to_be_bytes()
    }
}

/// An AES-GCM sealing/opening context bound to one key.
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes,
    /// GHASH subkey H = AES_K(0^128), expanded into lookup tables.
    h: GhashKey,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AesGcm { .. }")
    }
}

impl AesGcm {
    /// Creates a context from a raw key of 16 or 32 bytes.
    ///
    /// # Panics
    ///
    /// Panics if the key is not 16 or 32 bytes long.
    pub fn new(key: &[u8]) -> AesGcm {
        let aes = match key.len() {
            16 => Aes::new(key, KeySize::Aes128),
            32 => Aes::new(key, KeySize::Aes256),
            n => panic!("AES-GCM key must be 16 or 32 bytes, got {n}"),
        };
        let mut h_block = [0u8; 16];
        aes.encrypt_block(&mut h_block);
        AesGcm { aes, h: GhashKey::new(u128::from_be_bytes(h_block)) }
    }

    /// Creates an AES-128-GCM context.
    pub fn new_128(key: &[u8; 16]) -> AesGcm {
        AesGcm::new(key)
    }

    /// Creates an AES-256-GCM context.
    pub fn new_256(key: &[u8; 32]) -> AesGcm {
        AesGcm::new(key)
    }

    /// Derives the pre-counter block J0 from a 96-bit nonce.
    fn j0(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// CTR-mode keystream application starting at counter block `ctr`
    /// (already incremented past J0).
    fn ctr_xor(&self, mut ctr: [u8; 16], data: &mut [u8]) {
        for chunk in data.chunks_mut(16) {
            inc32(&mut ctr);
            let mut ks = ctr;
            self.aes.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let mut ghash = Ghash::new(&self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        len_block[8..].copy_from_slice(&((ciphertext.len() as u64) * 8).to_be_bytes());
        ghash.update_block(&len_block);
        let mut tag = ghash.finalize();
        let mut e_j0 = *j0;
        self.aes.encrypt_block(&mut e_j0);
        for (t, e) in tag.iter_mut().zip(e_j0.iter()) {
            *t ^= e;
        }
        tag
    }

    /// Encrypts `plaintext`, authenticating `aad`, returning the ciphertext
    /// and a detached 16-byte tag.
    pub fn seal_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; TAG_LEN]) {
        let j0 = self.j0(nonce);
        let mut ct = plaintext.to_vec();
        self.ctr_xor(j0, &mut ct);
        let tag = self.tag(&j0, aad, &ct);
        (ct, tag)
    }

    /// Encrypts `plaintext` and returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let (mut ct, tag) = self.seal_detached(nonce, aad, plaintext);
        ct.extend_from_slice(&tag);
        ct
    }

    /// Verifies the detached `tag` and decrypts `ciphertext`.
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] when the tag does not match; no plaintext is
    /// released in that case.
    pub fn open_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<Vec<u8>, AeadError> {
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(AeadError);
        }
        let mut pt = ciphertext.to_vec();
        self.ctr_xor(j0, &mut pt);
        Ok(pt)
    }

    /// Opens a `ciphertext || tag` buffer produced by [`AesGcm::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] if the buffer is shorter than a tag or the tag
    /// does not verify.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let tag: [u8; TAG_LEN] = tag.try_into().expect("split length");
        self.open_detached(nonce, aad, ct, &tag)
    }
}

/// Increments the last 32 bits of a counter block (big-endian).
fn inc32(block: &mut [u8; 16]) {
    let mut ctr = u32::from_be_bytes(block[12..16].try_into().unwrap());
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{hex, unhex};

    fn check(key: &str, iv: &str, pt: &str, aad: &str, ct: &str, tag: &str) {
        let gcm = AesGcm::new(&unhex(key));
        let nonce: [u8; 12] = unhex(iv).try_into().unwrap();
        let (c, t) = gcm.seal_detached(&nonce, &unhex(aad), &unhex(pt));
        assert_eq!(hex(&c), ct, "ciphertext");
        assert_eq!(hex(&t), tag, "tag");
        let p = gcm.open_detached(&nonce, &unhex(aad), &c, &t).unwrap();
        assert_eq!(hex(&p), pt, "roundtrip");
    }

    #[test]
    fn nist_case_1_empty() {
        check(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "58e2fccefa7e3061367f1d57a4e7455a",
        );
    }

    #[test]
    fn nist_case_2_one_block() {
        check(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "00000000000000000000000000000000",
            "",
            "0388dace60b6a392f328c2b971b2fe78",
            "ab6e47d42cec13bdf53a67b21257bddf",
        );
    }

    #[test]
    fn nist_case_3_four_blocks() {
        check(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            "",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            "4d5c2af327cd64a62cf35abd2ba6fab4",
        );
    }

    #[test]
    fn nist_case_4_with_aad() {
        check(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            "5bc94fbc3221a5db94fae95ae7121a47",
        );
    }

    #[test]
    fn nist_case_13_aes256_empty() {
        check(
            "0000000000000000000000000000000000000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "530f8afbc74536b9a963b4f1c4cb738b",
        );
    }

    #[test]
    fn nist_case_14_aes256_one_block() {
        check(
            "0000000000000000000000000000000000000000000000000000000000000000",
            "000000000000000000000000",
            "00000000000000000000000000000000",
            "",
            "cea7403d4d606b6e074ec5d3baf39d18",
            "d0d1c8a799996bf0265b98b5d48ab919",
        );
    }

    #[test]
    fn tamper_detection() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        let nonce = [3u8; 12];
        let mut sealed = gcm.seal(&nonce, b"aad", b"hello world");
        sealed[0] ^= 1;
        assert!(gcm.open(&nonce, b"aad", &sealed).is_err());
    }

    #[test]
    fn wrong_aad_rejected() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        let nonce = [3u8; 12];
        let sealed = gcm.seal(&nonce, b"aad", b"hello world");
        assert!(gcm.open(&nonce, b"wrong", &sealed).is_err());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        let sealed = gcm.seal(&[3u8; 12], b"", b"hello world");
        assert!(gcm.open(&[4u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn short_buffer_rejected() {
        let gcm = AesGcm::new_128(&[9u8; 16]);
        assert!(gcm.open(&[0u8; 12], b"", &[0u8; 15]).is_err());
    }

    #[test]
    fn seal_open_various_lengths() {
        let gcm = AesGcm::new_256(&[0xab; 32]);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let nonce = [len as u8; 12];
            let sealed = gcm.seal(&nonce, b"x", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(gcm.open(&nonce, b"x", &sealed).unwrap(), pt);
        }
    }
}
