//! Arithmetic in the field GF(2^255 - 19), shared by [`crate::x25519`] and
//! [`crate::ed25519`].
//!
//! Elements are represented with five 51-bit limbs (the classic 64-bit
//! "radix 2^51" representation). Operations keep limbs loosely reduced
//! (< 2^52) and fully normalize only on serialization.

/// Mask of the low 51 bits.
const MASK: u64 = (1 << 51) - 1;

/// An element of GF(2^255 - 19).
#[derive(Clone, Copy)]
pub struct Fe(pub(crate) [u64; 5]);

impl std::fmt::Debug for Fe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fe({:x?})", self.to_bytes())
    }
}

impl PartialEq for Fe {
    fn eq(&self, other: &Fe) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for Fe {}

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Constructs the small constant `n`.
    pub fn from_u64(n: u64) -> Fe {
        let mut fe = Fe::ZERO;
        fe.0[0] = n & MASK;
        fe.0[1] = n >> 51;
        fe
    }

    /// Parses a 32-byte little-endian encoding, ignoring the top bit
    /// (standard for both X25519 u-coordinates and Ed25519 y-coordinates).
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load8 = |off: usize| -> u64 {
            u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
        };
        Fe([
            load8(0) & MASK,
            (load8(6) >> 3) & MASK,
            (load8(12) >> 6) & MASK,
            (load8(19) >> 1) & MASK,
            (load8(24) >> 12) & MASK,
        ])
    }

    /// Serializes to the canonical 32-byte little-endian encoding.
    pub fn to_bytes(self) -> [u8; 32] {
        // First, a weak reduction so every limb is below 2^52.
        let mut h = self.0;
        let mut c;
        c = h[0] >> 51; h[0] &= MASK; h[1] += c;
        c = h[1] >> 51; h[1] &= MASK; h[2] += c;
        c = h[2] >> 51; h[2] &= MASK; h[3] += c;
        c = h[3] >> 51; h[3] &= MASK; h[4] += c;
        c = h[4] >> 51; h[4] &= MASK; h[0] += 19 * c;
        c = h[0] >> 51; h[0] &= MASK; h[1] += c;

        // Compute q = 1 iff h >= p, by simulating the addition of 19.
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;

        // Add 19*q and mask: this subtracts q*p by letting the carry out of
        // limb 4 (q * 2^255) vanish under the mask.
        h[0] += 19 * q;
        c = h[0] >> 51; h[0] &= MASK; h[1] += c;
        c = h[1] >> 51; h[1] &= MASK; h[2] += c;
        c = h[2] >> 51; h[2] &= MASK; h[3] += c;
        c = h[3] >> 51; h[3] &= MASK; h[4] += c;
        h[4] &= MASK;

        // Pack 5 x 51-bit limbs into 255 bits, little-endian.
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in h.iter() {
            acc |= (*limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        while idx < 32 {
            out[idx] = (acc & 0xff) as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    /// Addition (no immediate reduction; limbs stay < 2^53 for one op).
    pub fn add(&self, other: &Fe) -> Fe {
        let mut out = [0u64; 5];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] + other.0[i];
        }
        Fe(out).weak_reduce()
    }

    /// Subtraction, adding 2p first to keep limbs non-negative.
    pub fn sub(&self, other: &Fe) -> Fe {
        // 2p = (2^52 - 38, 2^52 - 2, 2^52 - 2, 2^52 - 2, 2^52 - 2) in radix 2^51.
        const TWO_P: [u64; 5] = [
            0xFFFFFFFFFFFDA,
            0xFFFFFFFFFFFFE,
            0xFFFFFFFFFFFFE,
            0xFFFFFFFFFFFFE,
            0xFFFFFFFFFFFFE,
        ];
        let mut out = [0u64; 5];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] + TWO_P[i] - other.0[i];
        }
        Fe(out).weak_reduce()
    }

    /// Negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    fn weak_reduce(self) -> Fe {
        let mut h = self.0;
        let mut c;
        c = h[0] >> 51; h[0] &= MASK; h[1] += c;
        c = h[1] >> 51; h[1] &= MASK; h[2] += c;
        c = h[2] >> 51; h[2] &= MASK; h[3] += c;
        c = h[3] >> 51; h[3] &= MASK; h[4] += c;
        c = h[4] >> 51; h[4] &= MASK; h[0] += 19 * c;
        Fe(h)
    }

    /// Multiplication.
    pub fn mul(&self, other: &Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let t0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let mut t1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let mut t2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let mut t3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let mut t4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        let mut out = [0u64; 5];
        let mut c: u128;
        c = t0 >> 51; t1 += c; out[0] = (t0 as u64) & MASK;
        c = t1 >> 51; t2 += c; out[1] = (t1 as u64) & MASK;
        c = t2 >> 51; t3 += c; out[2] = (t2 as u64) & MASK;
        c = t3 >> 51; t4 += c; out[3] = (t3 as u64) & MASK;
        c = t4 >> 51; out[4] = (t4 as u64) & MASK;
        out[0] += (c as u64) * 19;
        let carry = out[0] >> 51;
        out[0] &= MASK;
        out[1] += carry;
        Fe(out)
    }

    /// Squaring (delegates to [`Fe::mul`]; adequate for this workspace).
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Raises to an arbitrary power given as a 32-byte little-endian exponent.
    pub fn pow(&self, exponent_le: &[u8; 32]) -> Fe {
        let mut result = Fe::ONE;
        let mut base = *self;
        for byte in exponent_le.iter() {
            let mut bits = *byte;
            for _ in 0..8 {
                if bits & 1 == 1 {
                    result = result.mul(&base);
                }
                base = base.square();
                bits >>= 1;
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat's little theorem (x^(p-2)).
    ///
    /// Returns zero for the zero input.
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian bytes.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow(&exp)
    }

    /// x^((p-5)/8) = x^(2^252 - 3), used for square-root extraction.
    pub fn pow_p58(&self) -> Fe {
        // 2^252 - 3 little-endian: fd ff .. ff 0f.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow(&exp)
    }

    /// `sqrt(-1) mod p`, computed as 2^((p-1)/4).
    pub fn sqrt_m1() -> Fe {
        // (p-1)/4 = (2^255 - 20)/4 = 2^253 - 5, little-endian: fb ff .. ff 1f.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        Fe::from_u64(2).pow(&exp)
    }

    /// True when the element is zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// The low bit of the canonical encoding (the "sign" of an x-coordinate).
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Conditionally swaps `a` and `b` when `swap` is true.
    pub fn cswap(swap: bool, a: &mut Fe, b: &mut Fe) {
        if swap {
            std::mem::swap(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe::from_u64(n)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(1_000_000);
        let b = fe(999);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn small_multiplication() {
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
        assert_eq!(fe(1 << 40).mul(&fe(1 << 40)), {
            // 2^80 in the field.
            let mut limbs = Fe::ZERO;
            limbs.0[1] = 1 << 29;
            limbs
        });
    }

    #[test]
    fn negative_one_times_negative_one() {
        let m1 = Fe::ZERO.sub(&Fe::ONE);
        assert_eq!(m1.mul(&m1), Fe::ONE);
    }

    #[test]
    fn inversion() {
        let a = fe(123456789);
        let inv = a.invert();
        assert_eq!(a.mul(&inv), Fe::ONE);
    }

    #[test]
    fn inversion_of_zero_is_zero() {
        assert!(Fe::ZERO.invert().is_zero());
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = Fe::sqrt_m1();
        let minus_one = Fe::ZERO.sub(&Fe::ONE);
        assert_eq!(i.square(), minus_one);
    }

    #[test]
    fn bytes_roundtrip() {
        let a = fe(0xdead_beef_cafe);
        let b = Fe::from_bytes(&a.to_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_reduction_of_p_is_zero() {
        // p = 2^255 - 19 must serialize as zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = Fe::from_bytes(&p_bytes);
        // from_bytes masks the top bit but p < 2^255 so the value is intact.
        assert!(p.is_zero());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let base = fe(3);
        let mut exp = [0u8; 32];
        exp[0] = 13;
        let expected = (0..13).fold(Fe::ONE, |acc, _| acc.mul(&base));
        assert_eq!(base.pow(&exp), expected);
    }

    #[test]
    fn from_bytes_ignores_top_bit() {
        let mut a = [0u8; 32];
        a[31] = 0x80;
        assert!(Fe::from_bytes(&a).is_zero());
    }
}
