//! Ed25519 signatures (RFC 8032).
//!
//! NEXUS identities are Ed25519 keypairs: the volume owner and every
//! authorized user is identified by a public key stored in the supernode,
//! and both the volume-authentication challenge/response and the rootkey
//! exchange protocol sign their messages with these keys.
//!
//! # Examples
//!
//! ```
//! use nexus_crypto::ed25519::SigningKey;
//!
//! let key = SigningKey::from_seed(&[7u8; 32]);
//! let sig = key.sign(b"hello");
//! key.verifying_key().verify(b"hello", &sig).unwrap();
//! assert!(key.verifying_key().verify(b"tampered", &sig).is_err());
//! ```

use std::sync::OnceLock;

use crate::field25519::Fe;
use crate::sha2::Sha512;
use crate::SignatureError;

// ---------------------------------------------------------------------------
// Scalar arithmetic modulo the group order L.
// ---------------------------------------------------------------------------

/// The group order L = 2^252 + 27742317777372353535851937790883648493,
/// little-endian 64-bit limbs.
const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// A scalar modulo L, little-endian limbs, always fully reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Scalar(pub(crate) [u64; 4]);

impl Scalar {
    #[cfg(test)]
    pub(crate) const ZERO: Scalar = Scalar([0; 4]);

    /// True if `a < b` as 256-bit integers.
    fn lt(a: &[u64; 4], b: &[u64; 4]) -> bool {
        for i in (0..4).rev() {
            if a[i] != b[i] {
                return a[i] < b[i];
            }
        }
        false
    }

    fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            a[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0, "scalar subtraction underflow");
    }

    /// Reduces a 512-bit little-endian value modulo L by binary long
    /// division. Slow but simple and obviously correct; adequate here.
    pub(crate) fn reduce512(value: &[u8; 64]) -> Scalar {
        let mut limbs = [0u64; 8];
        for (i, chunk) in value.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut r = [0u64; 4];
        for i in (0..512).rev() {
            // r = (r << 1) | bit. r < L < 2^253 so the shift cannot overflow.
            let mut carry = (limbs[i / 64] >> (i % 64)) & 1;
            for limb in r.iter_mut() {
                let next_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = next_carry;
            }
            debug_assert_eq!(carry, 0);
            if !Self::lt(&r, &L) {
                Self::sub_in_place(&mut r, &L);
            }
        }
        Scalar(r)
    }

    /// Reduces a 32-byte little-endian value modulo L.
    pub(crate) fn from_bytes_mod_l(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Self::reduce512(&wide)
    }

    /// Parses a canonical scalar (< L); `None` otherwise.
    pub(crate) fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if Self::lt(&limbs, &L) {
            Some(Scalar(limbs))
        } else {
            None
        }
    }

    pub(crate) fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    pub(crate) fn add(&self, other: &Scalar) -> Scalar {
        let mut sum = [0u64; 4];
        let mut carry = 0u128;
        for (i, out) in sum.iter_mut().enumerate() {
            let s = self.0[i] as u128 + other.0[i] as u128 + carry;
            *out = s as u64;
            carry = s >> 64;
        }
        debug_assert_eq!(carry, 0, "both inputs < L so the sum fits 255 bits");
        if !Self::lt(&sum, &L) {
            Self::sub_in_place(&mut sum, &L);
        }
        Scalar(sum)
    }

    pub(crate) fn mul(&self, other: &Scalar) -> Scalar {
        let mut product = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t = product[i + j] as u128
                    + (self.0[i] as u128) * (other.0[j] as u128)
                    + carry;
                product[i + j] = t as u64;
                carry = t >> 64;
            }
            product[i + 4] = carry as u64;
        }
        let mut bytes = [0u8; 64];
        for (i, limb) in product.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        Self::reduce512(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Edwards curve points.
// ---------------------------------------------------------------------------

/// Curve constants, computed once at first use.
struct Constants {
    d: Fe,
    d2: Fe,
    sqrt_m1: Fe,
    base: Point,
}

fn constants() -> &'static Constants {
    static CONSTANTS: OnceLock<Constants> = OnceLock::new();
    CONSTANTS.get_or_init(|| {
        // d = -121665 / 121666 mod p.
        let d = Fe::from_u64(121665)
            .neg()
            .mul(&Fe::from_u64(121666).invert());
        let d2 = d.add(&d);
        let sqrt_m1 = Fe::sqrt_m1();
        // Base point: y = 4/5, x recovered with even sign.
        let y = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
        let x = recover_x(&y, false, &d, &sqrt_m1).expect("base point exists");
        let base = Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(&y),
        };
        Constants { d, d2, sqrt_m1, base }
    })
}

/// Recovers an x-coordinate from y and a sign bit; `None` if y is not on the
/// curve.
fn recover_x(y: &Fe, sign: bool, d: &Fe, sqrt_m1: &Fe) -> Option<Fe> {
    let yy = y.square();
    let u = yy.sub(&Fe::ONE);
    let v = d.mul(&yy).add(&Fe::ONE);
    // Candidate root of u/v: x = u * v^3 * (u * v^7)^((p-5)/8).
    let v3 = v.square().mul(&v);
    let v7 = v3.square().mul(&v);
    let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
    let vxx = v.mul(&x.square());
    if vxx != u {
        if vxx == u.neg() {
            x = x.mul(sqrt_m1);
        } else {
            return None;
        }
    }
    if x.is_zero() && sign {
        return None;
    }
    if x.is_negative() != sign {
        x = x.neg();
    }
    Some(x)
}

/// A point in extended twisted-Edwards coordinates (X : Y : Z : T), with
/// x = X/Z, y = Y/Z, and T = XY/Z.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    pub(crate) fn identity() -> Point {
        Point { x: Fe::ZERO, y: Fe::ONE, z: Fe::ONE, t: Fe::ZERO }
    }

    /// Unified addition (complete for a = -1 twisted Edwards curves), also
    /// valid for doubling.
    pub(crate) fn add(&self, other: &Point) -> Point {
        let c = constants();
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let cc = self.t.mul(&c.d2).mul(&other.t);
        let dd = self.z.mul(&other.z);
        let dd = dd.add(&dd);
        let e = b.sub(&a);
        let f = dd.sub(&cc);
        let g = dd.add(&cc);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Double-and-add scalar multiplication over a 256-bit little-endian
    /// scalar. Not constant time; see the crate-level hardening note.
    pub(crate) fn scalar_mul(&self, scalar_le: &[u8; 32]) -> Point {
        let mut result = Point::identity();
        let mut base = *self;
        for byte in scalar_le.iter() {
            let mut bits = *byte;
            for _ in 0..8 {
                if bits & 1 == 1 {
                    result = result.add(&base);
                }
                base = base.add(&base);
                bits >>= 1;
            }
        }
        result
    }

    /// Scalar multiplication of the base point.
    pub(crate) fn base_mul(scalar_le: &[u8; 32]) -> Point {
        constants().base.scalar_mul(scalar_le)
    }

    /// Compresses to the 32-byte encoding: y with the sign of x in the top
    /// bit.
    pub(crate) fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding; `None` if it is not a curve point.
    pub(crate) fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let c = constants();
        let sign = bytes[31] >> 7 == 1;
        let y = Fe::from_bytes(bytes);
        let x = recover_x(&y, sign, &c.d, &c.sqrt_m1)?;
        Some(Point { x, y, z: Fe::ONE, t: x.mul(&y) })
    }
}

// ---------------------------------------------------------------------------
// Keys and signatures.
// ---------------------------------------------------------------------------

/// An Ed25519 signature (`R || s`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; 64]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({:02x?}..)", &self.0[..4])
    }
}

impl Signature {
    /// Parses a signature from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] if the slice is not 64 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Signature, SignatureError> {
        let arr: [u8; 64] = bytes.try_into().map_err(|_| SignatureError)?;
        Ok(Signature(arr))
    }

    /// The raw 64-byte encoding.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0
    }
}

/// An Ed25519 private key, stored as its 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    /// Cached clamped scalar half of SHA-512(seed).
    scalar: [u8; 32],
    /// Cached prefix half of SHA-512(seed).
    prefix: [u8; 32],
    /// Cached public key.
    public: [u8; 32],
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(pub={:02x?}..)", &self.public[..4])
    }
}

impl SigningKey {
    /// Derives a key from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let h = Sha512::digest(seed);
        let mut scalar: [u8; 32] = h[..32].try_into().unwrap();
        scalar[0] &= 248;
        scalar[31] &= 63;
        scalar[31] |= 64;
        let prefix: [u8; 32] = h[32..].try_into().unwrap();
        let public = Point::base_mul(&scalar).compress();
        SigningKey { seed: *seed, scalar, prefix, public }
    }

    /// Generates a fresh key from the given randomness source.
    pub fn generate(rng: &mut dyn crate::rng::SecureRandom) -> SigningKey {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        SigningKey::from_seed(&seed)
    }

    /// The seed this key was derived from.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey(self.public)
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(&self.prefix).update(msg);
        let r = Scalar::reduce512(&h.finalize());
        let r_point = Point::base_mul(&r.to_bytes()).compress();

        let mut h = Sha512::new();
        h.update(&r_point).update(&self.public).update(msg);
        let k = Scalar::reduce512(&h.finalize());

        let a = Scalar::from_bytes_mod_l(&self.scalar);
        let s = r.add(&k.mul(&a));

        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

/// An Ed25519 public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VerifyingKey(pub [u8; 32]);

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({:02x?}..)", &self.0[..4])
    }
}

impl VerifyingKey {
    /// Parses a public key from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] if the slice is not 32 bytes or does not
    /// decode to a curve point.
    pub fn from_bytes(bytes: &[u8]) -> Result<VerifyingKey, SignatureError> {
        let arr: [u8; 32] = bytes.try_into().map_err(|_| SignatureError)?;
        Point::decompress(&arr).ok_or(SignatureError)?;
        Ok(VerifyingKey(arr))
    }

    /// The raw 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }

    /// Verifies `sig` over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] on any parse failure or mismatch.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        let r_bytes: [u8; 32] = sig.0[..32].try_into().unwrap();
        let s_bytes: [u8; 32] = sig.0[32..].try_into().unwrap();
        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(SignatureError)?;
        let a = Point::decompress(&self.0).ok_or(SignatureError)?;
        let r = Point::decompress(&r_bytes).ok_or(SignatureError)?;

        let mut h = Sha512::new();
        h.update(&r_bytes).update(&self.0).update(msg);
        let k = Scalar::reduce512(&h.finalize());

        // Check s·B == R + k·A.
        let lhs = Point::base_mul(&s.to_bytes());
        let rhs = r.add(&a.scalar_mul(&k.to_bytes()));
        if crate::ct::ct_eq(&lhs.compress(), &rhs.compress()) {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{hex, unhex};

    fn rfc8032_case(seed_hex: &str, pub_hex: &str, msg_hex: &str, sig_hex: &str) {
        let seed: [u8; 32] = unhex(seed_hex).try_into().unwrap();
        let key = SigningKey::from_seed(&seed);
        assert_eq!(hex(&key.verifying_key().to_bytes()), pub_hex, "public key");
        let msg = unhex(msg_hex);
        let sig = key.sign(&msg);
        assert_eq!(hex(&sig.to_bytes()), sig_hex, "signature");
        key.verifying_key().verify(&msg, &sig).expect("verifies");
    }

    #[test]
    fn rfc8032_test_1_empty_message() {
        rfc8032_case(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            "",
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
        );
    }

    #[test]
    fn rfc8032_test_2_one_byte() {
        rfc8032_case(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            "72",
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
        );
    }

    #[test]
    fn rfc8032_test_3_two_bytes() {
        rfc8032_case(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            "af82",
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
        );
    }

    #[test]
    fn rejects_wrong_message() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let sig = key.sign(b"hello");
        assert!(key.verifying_key().verify(b"other", &sig).is_err());
    }

    #[test]
    fn rejects_wrong_key() {
        let key = SigningKey::from_seed(&[1u8; 32]);
        let other = SigningKey::from_seed(&[2u8; 32]);
        let sig = key.sign(b"hello");
        assert!(other.verifying_key().verify(b"hello", &sig).is_err());
    }

    #[test]
    fn rejects_bitflipped_signature() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let mut sig = key.sign(b"payload").to_bytes();
        sig[10] ^= 1;
        let sig = Signature::from_bytes(&sig).unwrap();
        assert!(key.verifying_key().verify(b"payload", &sig).is_err());
    }

    #[test]
    fn rejects_non_canonical_s() {
        let key = SigningKey::from_seed(&[4u8; 32]);
        let mut sig = key.sign(b"x").to_bytes();
        // Force s >= L by setting its top bits.
        sig[63] |= 0xf0;
        let sig = Signature::from_bytes(&sig).unwrap();
        assert!(key.verifying_key().verify(b"x", &sig).is_err());
    }

    #[test]
    fn signature_parse_length() {
        assert!(Signature::from_bytes(&[0u8; 63]).is_err());
        assert!(Signature::from_bytes(&[0u8; 64]).is_ok());
    }

    #[test]
    fn scalar_add_mul_basics() {
        let two = Scalar::from_bytes_mod_l(&{
            let mut b = [0u8; 32];
            b[0] = 2;
            b
        });
        let three = Scalar::from_bytes_mod_l(&{
            let mut b = [0u8; 32];
            b[0] = 3;
            b
        });
        let six = two.mul(&three);
        let mut expect = [0u8; 32];
        expect[0] = 6;
        assert_eq!(six.to_bytes(), expect);
        let five = two.add(&three);
        let mut expect = [0u8; 32];
        expect[0] = 5;
        assert_eq!(five.to_bytes(), expect);
    }

    #[test]
    fn scalar_l_reduces_to_zero() {
        let mut l_bytes = [0u8; 32];
        for (i, limb) in super::L.iter().enumerate() {
            l_bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(Scalar::from_bytes_mod_l(&l_bytes), Scalar::ZERO);
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_none());
    }

    #[test]
    fn point_identity_laws() {
        let key = SigningKey::from_seed(&[9u8; 32]);
        let a = Point::decompress(&key.verifying_key().to_bytes()).unwrap();
        let id = Point::identity();
        assert_eq!(a.add(&id).compress(), a.compress());
        assert_eq!(id.add(&a).compress(), a.compress());
    }

    #[test]
    fn decompress_rejects_garbage() {
        // y = 2 is not on the curve (2^2 - 1 = 3 over d*4+1 has no sqrt).
        let mut bytes = [0u8; 32];
        bytes[0] = 2;
        // Whether or not this particular y decodes, a full scan of a few
        // values must find at least one reject, proving validation runs.
        let mut rejected = false;
        for v in 0u8..16 {
            bytes[0] = v;
            if Point::decompress(&bytes).is_none() {
                rejected = true;
            }
        }
        assert!(rejected);
    }
}
