//! GHASH/POLYVAL multiplication through PCLMULQDQ (the hardware half of
//! the [`crate::CryptoProfile::ConstantTime`] profile, alongside
//! [`crate::aes_ni`]).
//!
//! PCLMULQDQ is a 64×64 → 127-bit carryless multiply executed on
//! dedicated silicon: like the masked-shift [`crate::ghash_ct`] lane it
//! touches no table and takes no data-dependent branch, but it runs an
//! order of magnitude faster. Field elements use the same convention as
//! the rest of the crate: a block's 16 bytes load big-endian into a
//! `u128` whose bit `127 - i` is the coefficient of `t^i`, reduced by
//! `t^128 + t^7 + t^2 + t + 1` (SP 800-38D). POLYVAL reuses this code
//! through the byte-reversal equivalence in RFC 8452 appendix A, exactly
//! as the portable lanes do.
//!
//! Two tricks keep the per-block cost at four PCLMULQDQ plus shifts:
//!
//! - **Reflected-domain reduction.** GHASH's bit order is the mirror of
//!   the polynomial order, so a textbook implementation bit-reverses each
//!   operand, multiplies, reduces, and reverses back. Instead we multiply
//!   the *reflected* operands directly and run the reduction mirrored:
//!   with `A` the raw 255-bit product, `B = A << 1` is exactly the
//!   bit-reversal of the natural-order product, and folding `B`'s low
//!   half through the mirrored pentanomial (`x ^ x>>1 ^ x>>2 ^ x>>7`,
//!   overflow re-folded once) lands the result already in GHASH bit
//!   order. This is the precise mirror image of
//!   [`crate::ghash_ct::ghash_mul_ct`]'s verified reduction.
//! - **Aggregated reduction** (Gueron's technique): for a batch of
//!   independent products `Σ Xᵢ·Hⁱ` — the shape of the 8-block Horner
//!   step over the H¹..H⁸ power table in [`crate::gcm`] — the unreduced
//!   256-bit products are XOR-summed first and the pentanomial reduction
//!   runs once per batch instead of once per block.
//!
//! Soundness: every public entry point is a safe fn whose callers (the
//! [`crate::cpu`] dispatch layer) only select this lane when CPUID
//! reported PCLMULQDQ; the `#[target_feature]` internals never run
//! without it.

use core::arch::x86_64::{
    __m128i, _mm_clmulepi64_si128, _mm_set_epi64x, _mm_slli_si128, _mm_srli_si128, _mm_xor_si128,
};

/// Carryless 128×128 → 256-bit multiply via four PCLMULQDQ (schoolbook
/// with combined cross terms), returned as `(low, high)` `u128` halves.
#[target_feature(enable = "pclmulqdq")]
unsafe fn clmul256(x: u128, y: u128) -> (u128, u128) {
    let a = to_vec(x);
    let b = to_vec(y);
    let p_lo = _mm_clmulepi64_si128(a, b, 0x00);
    let p_hi = _mm_clmulepi64_si128(a, b, 0x11);
    let cross =
        _mm_xor_si128(_mm_clmulepi64_si128(a, b, 0x01), _mm_clmulepi64_si128(a, b, 0x10));
    let lo = _mm_xor_si128(p_lo, _mm_slli_si128(cross, 8));
    let hi = _mm_xor_si128(p_hi, _mm_srli_si128(cross, 8));
    (to_u128(lo), to_u128(hi))
}

#[inline(always)]
unsafe fn to_vec(x: u128) -> __m128i {
    _mm_set_epi64x((x >> 64) as i64, x as i64)
}

#[inline(always)]
unsafe fn to_u128(v: __m128i) -> u128 {
    // Lane 0 of an `__m128i` is the low qword, matching `u128` on a
    // little-endian target, so the transmute inverts `to_vec`.
    core::mem::transmute::<__m128i, u128>(v)
}

/// Reduces an unreduced 256-bit reflected-domain product modulo
/// `t^128 + t^7 + t^2 + t + 1`. `B = A << 1` converts the raw carryless
/// product into the bit-reversal of the natural-order product; the two
/// fold steps are the mirror image of `ghash_ct`'s reduction (see the
/// module docs). Pure shifts and XORs — constant-time.
#[inline(always)]
fn reduce(lo: u128, hi: u128) -> u128 {
    let bl = lo << 1;
    let bh = (hi << 1) | (lo >> 127);
    // Fold the low half through the mirrored pentanomial...
    let mut m = bl ^ (bl >> 1) ^ (bl >> 2) ^ (bl >> 7);
    // ...and re-fold the bits that fell off the bottom.
    let o = (bl << 127) ^ (bl << 126) ^ (bl << 121);
    m ^= o ^ (o >> 1) ^ (o >> 2) ^ (o >> 7);
    bh ^ m
}

/// GF(2^128) multiply in GHASH bit order; byte-identical to
/// [`crate::ghash_ct::ghash_mul_ct`] and to the Shoup table lane.
pub(crate) fn ghash_mul_hw(x: u128, y: u128) -> u128 {
    debug_assert!(crate::cpu::hw_accel_available());
    // SAFETY: this lane is only ever selected when CPUID reported
    // PCLMULQDQ (`cpu::backend_for`), and `debug_assert` re-checks.
    let (lo, hi) = unsafe { clmul256(x, y) };
    reduce(lo, hi)
}

/// Aggregated-reduction sum `Σ xs[i] ⊗ hs[i]`: one unreduced 256-bit
/// accumulation across the batch, one pentanomial reduction at the end.
/// This is the 8-block Horner step `(Y ⊕ X₁)·H⁸ ⊕ X₂·H⁷ ⊕ … ⊕ X₈·H`
/// when called with the descending power table.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub(crate) fn ghash_mul_sum_hw(xs: &[u128], hs: &[u128]) -> u128 {
    assert_eq!(xs.len(), hs.len(), "aggregated GHASH operand mismatch");
    debug_assert!(crate::cpu::hw_accel_available());
    let mut acc_lo = 0u128;
    let mut acc_hi = 0u128;
    for (&x, &h) in xs.iter().zip(hs.iter()) {
        // SAFETY: as in `ghash_mul_hw`.
        let (lo, hi) = unsafe { clmul256(x, h) };
        acc_lo ^= lo;
        acc_hi ^= hi;
    }
    reduce(acc_lo, acc_hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghash_ct::ghash_mul_ct;
    use crate::rng::{SecureRandom, SeededRandom};

    /// Self-skip on silicon without PCLMULQDQ (dispatch never selects
    /// this lane there).
    fn hw() -> bool {
        crate::cpu::hw_accel_available()
    }

    /// The field's multiplicative identity in GHASH bit order: t^0 is
    /// bit 127.
    const ONE: u128 = 1 << 127;

    #[test]
    fn identity_and_zero() {
        if !hw() {
            return;
        }
        let mut rng = SeededRandom::new(0x9a5);
        for _ in 0..20 {
            let x = u128::from_be_bytes(rng.bytes());
            assert_eq!(ghash_mul_hw(x, ONE), x);
            assert_eq!(ghash_mul_hw(ONE, x), x);
            assert_eq!(ghash_mul_hw(x, 0), 0);
        }
    }

    #[test]
    fn matches_masked_clmul_lane() {
        if !hw() {
            return;
        }
        let mut rng = SeededRandom::new(0xc1a1);
        let edges = [0u128, ONE, u128::MAX, 1, 1 << 64, (1 << 64) - 1];
        for &x in &edges {
            for &y in &edges {
                assert_eq!(ghash_mul_hw(x, y), ghash_mul_ct(x, y), "edge {x:032x} * {y:032x}");
            }
        }
        for _ in 0..500 {
            let x = u128::from_be_bytes(rng.bytes());
            let y = u128::from_be_bytes(rng.bytes());
            assert_eq!(ghash_mul_hw(x, y), ghash_mul_ct(x, y), "{x:032x} * {y:032x}");
        }
    }

    #[test]
    fn aggregated_matches_per_block_reduction() {
        if !hw() {
            return;
        }
        let mut rng = SeededRandom::new(0xa99);
        for len in [1usize, 2, 4, 7, 8] {
            let xs: Vec<u128> = (0..len).map(|_| u128::from_be_bytes(rng.bytes())).collect();
            let hs: Vec<u128> = (0..len).map(|_| u128::from_be_bytes(rng.bytes())).collect();
            let expect = xs
                .iter()
                .zip(hs.iter())
                .fold(0u128, |acc, (&x, &h)| acc ^ ghash_mul_ct(x, h));
            assert_eq!(ghash_mul_sum_hw(&xs, &hs), expect, "len {len}");
        }
    }

    #[test]
    fn commutative_and_distributive() {
        if !hw() {
            return;
        }
        let mut rng = SeededRandom::new(0xd15);
        for _ in 0..100 {
            let a = u128::from_be_bytes(rng.bytes());
            let b = u128::from_be_bytes(rng.bytes());
            let c = u128::from_be_bytes(rng.bytes());
            assert_eq!(ghash_mul_hw(a, b), ghash_mul_hw(b, a));
            assert_eq!(
                ghash_mul_hw(a ^ b, c),
                ghash_mul_hw(a, c) ^ ghash_mul_hw(b, c)
            );
        }
    }
}
