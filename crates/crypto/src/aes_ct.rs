//! Bitsliced constant-time AES.
//!
//! The Fast lane ([`crate::aes`]) encrypts through T-tables and S-box
//! lookups indexed by key- and plaintext-derived bytes; which cache lines
//! those loads touch is a function of the secret state, the classic AES
//! cache-timing channel. Inside an SGX-style enclave the adversary *is*
//! the co-resident OS (paper §III), which can prime/probe caches at will,
//! so the hardened profile must never index memory by a secret.
//!
//! This module bitslices instead: the 128 bytes of eight AES states are
//! transposed into eight `u128` bit planes (plane `b`, bit `L` = bit `b`
//! of byte lane `L`), and every round transformation becomes a fixed
//! sequence of XOR/AND/shift operations on whole planes:
//!
//! - **SubBytes** is computed algebraically — GF(2^8) inversion as the
//!   power `x^254` (squarings are linear bit maps; multiplications are
//!   AND/XOR convolutions) followed by the affine map — with no table in
//!   sight;
//! - **ShiftRows** permutes 16-bit block groups with masked lane
//!   rotations;
//! - **MixColumns** rotates 4-bit column groups and applies `xtime` as a
//!   plane permutation plus conditional XOR of the top plane.
//!
//! Every operation touches the same memory locations in the same order
//! for any key and plaintext. The price is arithmetic: all 256 S-box
//! values are effectively computed and discarded per lookup; the
//! `micro_ct` bench (BENCH_ct.json) tracks the cost.
//!
//! The scalar [`sbox_ct`] used by the hardened key schedule follows the
//! same inversion route one byte at a time with branchless masking.

/// All-ones plane, used to XOR the constant bits of the affine maps.
const ONES: u128 = u128::MAX;

/// Replicates a 16-bit block-group mask across the eight blocks.
#[inline(always)]
const fn rep16(m: u16) -> u128 {
    (m as u128) * 0x0001_0001_0001_0001_0001_0001_0001_0001
}

/// Replicates a 4-bit column-group mask across all 32 columns.
#[inline(always)]
const fn rep4(m: u8) -> u128 {
    (m as u128) * 0x1111_1111_1111_1111_1111_1111_1111_1111
}

/// Rotates every 16-bit block group right by `n` (1..=15).
#[inline(always)]
fn rotr16(x: u128, n: u32) -> u128 {
    ((x >> n) & rep16((0xffffu32 >> n) as u16))
        | ((x << (16 - n)) & rep16(((0xffffu32 << (16 - n)) & 0xffff) as u16))
}

/// Rotates every 4-bit column group right by `n` (1..=3).
#[inline(always)]
fn rotr4(x: u128, n: u32) -> u128 {
    ((x >> n) & rep4((0xfu32 >> n) as u8))
        | ((x << (4 - n)) & rep4(((0xfu32 << (4 - n)) & 0xf) as u8))
}

/// Transposes an 8×8 bit matrix held as a `u64` (byte `r`, bit `c` ↔ byte
/// `c`, bit `r`) with three delta swaps; self-inverse.
#[inline(always)]
fn transpose8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00aa_00aa_00aa_00aa;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_cccc_0000_cccc;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_f0f0_f0f0;
    x ^= t ^ (t << 28);
    x
}

/// Packs eight 16-byte blocks into bit planes: plane `b`, bit `L` = bit
/// `b` of state byte `L % 16` of block `L / 16`.
fn pack(blocks: &[[u8; 16]; 8]) -> [u128; 8] {
    let mut q = [0u128; 8];
    for g in 0..16 {
        let base = 8 * g;
        let mut w = 0u64;
        for j in 0..8 {
            let lane = base + j;
            w |= (blocks[lane >> 4][lane & 15] as u64) << (8 * j);
        }
        let t = transpose8(w);
        for (b, plane) in q.iter_mut().enumerate() {
            *plane |= (((t >> (8 * b)) & 0xff) as u128) << base;
        }
    }
    q
}

/// Inverse of [`pack`].
fn unpack(q: &[u128; 8], blocks: &mut [[u8; 16]; 8]) {
    for g in 0..16 {
        let base = 8 * g;
        let mut t = 0u64;
        for (b, plane) in q.iter().enumerate() {
            t |= (((plane >> base) & 0xff) as u64) << (8 * b);
        }
        let w = transpose8(t);
        for j in 0..8 {
            let lane = base + j;
            blocks[lane >> 4][lane & 15] = (w >> (8 * j)) as u8;
        }
    }
}

/// GF(2^8) multiplication of two bitsliced values: AND/XOR convolution to
/// a degree-14 product, folded down with `x^8 = x^4 + x^3 + x + 1`.
fn gmul(a: &[u128; 8], b: &[u128; 8]) -> [u128; 8] {
    let mut c = [0u128; 15];
    for i in 0..8 {
        for j in 0..8 {
            c[i + j] ^= a[i] & b[j];
        }
    }
    for k in (8..15).rev() {
        let t = c[k];
        c[k - 8] ^= t;
        c[k - 7] ^= t;
        c[k - 5] ^= t;
        c[k - 4] ^= t;
    }
    c[..8].try_into().expect("eight planes")
}

/// GF(2^8) squaring: a linear map on the coefficient planes.
fn gsq(a: &[u128; 8]) -> [u128; 8] {
    [
        a[0] ^ a[4] ^ a[6],
        a[4] ^ a[6] ^ a[7],
        a[1] ^ a[5],
        a[4] ^ a[5] ^ a[6] ^ a[7],
        a[2] ^ a[4] ^ a[7],
        a[5] ^ a[6],
        a[3] ^ a[5],
        a[6] ^ a[7],
    ]
}

/// GF(2^8) inversion as `x^254` (maps 0 to 0, as SubBytes requires).
fn ginv(a: &[u128; 8]) -> [u128; 8] {
    let x2 = gsq(a);
    let x3 = gmul(&x2, a);
    let x12 = gsq(&gsq(&x3));
    let x15 = gmul(&x12, &x3);
    let x240 = gsq(&gsq(&gsq(&gsq(&x15))));
    let x252 = gmul(&x240, &x12);
    gmul(&x252, &x2)
}

/// Bitsliced SubBytes: inversion, then the forward affine map
/// `b'_i = b_i ⊕ b_{i+4} ⊕ b_{i+5} ⊕ b_{i+6} ⊕ b_{i+7} ⊕ 0x63_i`.
fn sub_bytes(q: &mut [u128; 8]) {
    let inv = ginv(q);
    for (i, plane) in q.iter_mut().enumerate() {
        *plane = inv[i]
            ^ inv[(i + 4) % 8]
            ^ inv[(i + 5) % 8]
            ^ inv[(i + 6) % 8]
            ^ inv[(i + 7) % 8]
            ^ (if (0x63 >> i) & 1 == 1 { ONES } else { 0 });
    }
}

/// Bitsliced InvSubBytes: inverse affine map
/// `b_i = y_{i+2} ⊕ y_{i+5} ⊕ y_{i+7} ⊕ 0x05_i`, then inversion.
fn inv_sub_bytes(q: &mut [u128; 8]) {
    let mut t = [0u128; 8];
    for (i, plane) in t.iter_mut().enumerate() {
        *plane = q[(i + 2) % 8]
            ^ q[(i + 5) % 8]
            ^ q[(i + 7) % 8]
            ^ (if (0x05 >> i) & 1 == 1 { ONES } else { 0 });
    }
    *q = ginv(&t);
}

/// Bitsliced ShiftRows. State byte `4c + r` sits at bit `4c + r` of each
/// block group; row `r` rotates left by `r` columns, i.e. bit `p` takes
/// the value of bit `p + 4r` within its group.
fn shift_rows(q: &mut [u128; 8]) {
    for plane in q.iter_mut() {
        let p = *plane;
        *plane = (p & rep16(0x1111))
            | rotr16(p & rep16(0x1111 << 1), 4)
            | rotr16(p & rep16(0x1111 << 2), 8)
            | rotr16(p & rep16(0x1111 << 3), 12);
    }
}

/// Bitsliced InvShiftRows (rotations in the opposite direction).
fn inv_shift_rows(q: &mut [u128; 8]) {
    for plane in q.iter_mut() {
        let p = *plane;
        *plane = (p & rep16(0x1111))
            | rotr16(p & rep16(0x1111 << 1), 12)
            | rotr16(p & rep16(0x1111 << 2), 8)
            | rotr16(p & rep16(0x1111 << 3), 4);
    }
}

/// `xtime` across planes: shift the coefficient planes up one and fold
/// the top plane back through `0x1b` (planes 0, 1, 3, 4).
#[inline(always)]
fn xt(v: &[u128; 8]) -> [u128; 8] {
    [v[7], v[0] ^ v[7], v[1], v[2] ^ v[7], v[3] ^ v[7], v[4], v[5], v[6]]
}

/// Bitsliced MixColumns via `s' = xtime(s ⊕ rot1) ⊕ rot1 ⊕ rot2 ⊕ rot3`,
/// where `rotK` aligns the value `K` rows below within the column.
fn mix_columns(q: &mut [u128; 8]) {
    let mut sum = [0u128; 8]; // s ^ rot1, input to xtime
    let mut rest = [0u128; 8]; // rot1 ^ rot2 ^ rot3
    for i in 0..8 {
        let r1 = rotr4(q[i], 1);
        sum[i] = q[i] ^ r1;
        rest[i] = r1 ^ rotr4(q[i], 2) ^ rotr4(q[i], 3);
    }
    let doubled = xt(&sum);
    for i in 0..8 {
        q[i] = doubled[i] ^ rest[i];
    }
}

/// Bitsliced InvMixColumns: `0e·s ⊕ 0b·rot1 ⊕ 0d·rot2 ⊕ 09·rot3`, each
/// constant multiple assembled from `xtime` chains (x2, x4, x8).
fn inv_mix_columns(q: &mut [u128; 8]) {
    let mut acc = [0u128; 8];
    for k in 0..4u32 {
        let mut u = *q;
        if k > 0 {
            for plane in u.iter_mut() {
                *plane = rotr4(*plane, k);
            }
        }
        let x2 = xt(&u);
        let x4 = xt(&x2);
        let x8 = xt(&x4);
        for i in 0..8 {
            // Constants by rotation: 0x0e, 0x0b, 0x0d, 0x09.
            acc[i] ^= match k {
                0 => x8[i] ^ x4[i] ^ x2[i],
                1 => x8[i] ^ x2[i] ^ u[i],
                2 => x8[i] ^ x4[i] ^ u[i],
                _ => x8[i] ^ u[i],
            };
        }
    }
    *q = acc;
}

#[inline(always)]
fn xor_planes(q: &mut [u128; 8], rk: &[u128; 8]) {
    for (plane, k) in q.iter_mut().zip(rk.iter()) {
        *plane ^= k;
    }
}

/// Branchless GF(2^8) multiplication (scalar, for the key schedule).
#[inline]
fn gf_mul_ct(a: u8, b: u8) -> u8 {
    let mut acc = 0u8;
    let mut a = a;
    for i in 0..8 {
        acc ^= a & ((b >> i) & 1).wrapping_neg();
        a = (a << 1) ^ (0x1b & ((a >> 7) & 1).wrapping_neg());
    }
    acc
}

/// Constant-time scalar S-box: GF(2^8) inversion by exponentiation plus
/// the affine map, no table lookup or secret-dependent branch. Used by
/// the hardened key schedule, where the expanded key bytes themselves
/// pass through SubWord.
pub(crate) fn sbox_ct(b: u8) -> u8 {
    let x2 = gf_mul_ct(b, b);
    let x3 = gf_mul_ct(x2, b);
    let x6 = gf_mul_ct(x3, x3);
    let x12 = gf_mul_ct(x6, x6);
    let x15 = gf_mul_ct(x12, x3);
    let x30 = gf_mul_ct(x15, x15);
    let x60 = gf_mul_ct(x30, x30);
    let x120 = gf_mul_ct(x60, x60);
    let x240 = gf_mul_ct(x120, x120);
    let x252 = gf_mul_ct(x240, x12);
    let inv = gf_mul_ct(x252, x2);
    inv ^ inv.rotate_left(1) ^ inv.rotate_left(2) ^ inv.rotate_left(3) ^ inv.rotate_left(4) ^ 0x63
}

/// The bitsliced round-key schedule: one set of eight plane constants per
/// round, each a 16-bit pattern replicated across the eight blocks.
#[derive(Clone)]
pub(crate) struct AesCt {
    rk_planes: Vec<[u128; 8]>,
    rounds: usize,
}

impl AesCt {
    /// Packs expanded round keys (already derived constant-time by the
    /// caller) into plane form.
    pub(crate) fn from_round_keys(round_keys: &[[u8; 16]]) -> AesCt {
        let rk_planes = round_keys
            .iter()
            .map(|rk| {
                let mut planes = [0u128; 8];
                for (b, plane) in planes.iter_mut().enumerate() {
                    let mut m = 0u16;
                    for (i, byte) in rk.iter().enumerate() {
                        m |= (((byte >> b) & 1) as u16) << i;
                    }
                    *plane = rep16(m);
                }
                planes
            })
            .collect::<Vec<_>>();
        AesCt { rounds: rk_planes.len() - 1, rk_planes }
    }

    /// Encrypts eight blocks in place; the whole batch costs one pass of
    /// plane arithmetic, which is why single-block callers still route
    /// through here (seven idle lanes) rather than get a scalar path with
    /// different timing behaviour.
    pub(crate) fn encrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        let mut q = pack(blocks);
        xor_planes(&mut q, &self.rk_planes[0]);
        for rk in &self.rk_planes[1..self.rounds] {
            sub_bytes(&mut q);
            shift_rows(&mut q);
            mix_columns(&mut q);
            xor_planes(&mut q, rk);
        }
        sub_bytes(&mut q);
        shift_rows(&mut q);
        xor_planes(&mut q, &self.rk_planes[self.rounds]);
        unpack(&q, blocks);
    }

    /// Decrypts eight blocks in place (inverse round order).
    pub(crate) fn decrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        let mut q = pack(blocks);
        xor_planes(&mut q, &self.rk_planes[self.rounds]);
        inv_shift_rows(&mut q);
        inv_sub_bytes(&mut q);
        for rk in self.rk_planes[1..self.rounds].iter().rev() {
            xor_planes(&mut q, rk);
            inv_mix_columns(&mut q);
            inv_shift_rows(&mut q);
            inv_sub_bytes(&mut q);
        }
        xor_planes(&mut q, &self.rk_planes[0]);
        unpack(&q, blocks);
    }

    /// Best-effort volatile clear of the round-key planes (called from
    /// [`crate::aes::Aes`]'s `Drop`).
    pub(crate) fn wipe(&mut self) {
        for planes in self.rk_planes.iter_mut() {
            crate::ct::zeroize_u128(planes);
        }
    }
}

impl std::fmt::Debug for AesCt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesCt").field("rounds", &self.rounds).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{INV_SBOX, SBOX};

    /// Packs byte value `base + lane` into every lane, applies `f` to the
    /// planes, and returns the resulting 128 lane bytes.
    fn map_lanes(base: usize, f: impl Fn(&mut [u128; 8])) -> Vec<u8> {
        let mut blocks = [[0u8; 16]; 8];
        for lane in 0..128 {
            blocks[lane >> 4][lane & 15] = (base + lane) as u8;
        }
        let mut q = pack(&blocks);
        f(&mut q);
        unpack(&q, &mut blocks);
        (0..128).map(|lane| blocks[lane >> 4][lane & 15]).collect()
    }

    #[test]
    fn pack_unpack_roundtrip_matches_naive_reference() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(7);
        for _ in 0..20 {
            let mut blocks = [[0u8; 16]; 8];
            for b in blocks.iter_mut() {
                rng.fill(b);
            }
            let q = pack(&blocks);
            // Naive per-bit reference for the plane layout.
            for (b, plane) in q.iter().enumerate() {
                for lane in 0..128 {
                    let expect = (blocks[lane >> 4][lane & 15] >> b) & 1;
                    assert_eq!(((plane >> lane) & 1) as u8, expect, "plane {b} lane {lane}");
                }
            }
            let mut back = [[0u8; 16]; 8];
            unpack(&q, &mut back);
            assert_eq!(back, blocks);
        }
    }

    #[test]
    fn sbox_ct_matches_table_for_all_bytes() {
        for b in 0..=255u8 {
            assert_eq!(sbox_ct(b), SBOX[b as usize], "byte {b:#04x}");
        }
    }

    #[test]
    fn bitsliced_sub_bytes_matches_table_for_all_bytes() {
        for base in [0usize, 128] {
            let out = map_lanes(base, sub_bytes);
            for lane in 0..128 {
                assert_eq!(out[lane], SBOX[base + lane], "byte {}", base + lane);
            }
        }
    }

    #[test]
    fn bitsliced_inv_sub_bytes_matches_table_for_all_bytes() {
        for base in [0usize, 128] {
            let out = map_lanes(base, inv_sub_bytes);
            for lane in 0..128 {
                assert_eq!(out[lane], INV_SBOX[base + lane], "byte {}", base + lane);
            }
        }
    }

    #[test]
    fn bitsliced_row_column_ops_match_byte_reference() {
        use crate::aes::reference;
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(9);
        type PlaneOp = fn(&mut [u128; 8]);
        type ByteOp = fn(&mut [u8; 16]);
        let cases: [(PlaneOp, ByteOp); 4] = [
            (shift_rows, reference::shift_rows),
            (inv_shift_rows, reference::inv_shift_rows),
            (mix_columns, reference::mix_columns),
            (inv_mix_columns, reference::inv_mix_columns),
        ];
        for (plane_op, byte_op) in cases {
            for _ in 0..20 {
                let mut blocks = [[0u8; 16]; 8];
                for b in blocks.iter_mut() {
                    rng.fill(b);
                }
                let mut expect = blocks;
                for b in expect.iter_mut() {
                    byte_op(b);
                }
                let mut q = pack(&blocks);
                plane_op(&mut q);
                let mut got = [[0u8; 16]; 8];
                unpack(&q, &mut got);
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn gmul_gsq_agree_with_scalar_field() {
        // Exhaustive over a × b by packing 128 lanes per pass: squaring
        // and multiplication of every byte pair must match gf_mul_ct.
        for a in 0..=255u8 {
            let mut blocks = [[0u8; 16]; 8];
            for lane in 0..128 {
                blocks[lane >> 4][lane & 15] = a;
            }
            let qa = pack(&blocks);
            assert_eq!(
                {
                    let mut out = [[0u8; 16]; 8];
                    unpack(&gsq(&qa), &mut out);
                    out[0][0]
                },
                gf_mul_ct(a, a),
                "square of {a:#04x}"
            );
            for base in [0usize, 128] {
                let mut bb = [[0u8; 16]; 8];
                for lane in 0..128 {
                    bb[lane >> 4][lane & 15] = (base + lane) as u8;
                }
                let qb = pack(&bb);
                let mut out = [[0u8; 16]; 8];
                unpack(&gmul(&qa, &qb), &mut out);
                for lane in 0..128 {
                    let b = (base + lane) as u8;
                    assert_eq!(
                        out[lane >> 4][lane & 15],
                        gf_mul_ct(a, b),
                        "{a:#04x} * {b:#04x}"
                    );
                }
            }
        }
    }
}
