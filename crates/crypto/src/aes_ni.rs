//! AES through the x86_64 AES-NI instructions (the hardware half of the
//! [`crate::CryptoProfile::ConstantTime`] profile, alongside
//! [`crate::ghash_clmul`]).
//!
//! AESENC/AESENCLAST execute one full round per instruction on dedicated
//! silicon: no table in memory, no secret-indexed load, no data-dependent
//! branch — constant-time by construction, and several times faster than
//! the T-table lane. The key schedule runs through AESKEYGENASSIST (the
//! S-box lookups happen inside the ALU, so key bytes never index memory
//! either), and decryption uses the Equivalent Inverse Cipher: round keys
//! passed through AESIMC, applied in reverse with AESDEC/AESDECLAST
//! (FIPS 197 §5.3.5).
//!
//! Everything here is `unsafe` at the instruction level but sound by
//! construction: [`AesNi::new`] refuses to build unless
//! [`crate::cpu::hw_accel_available`] reported the AES-NI CPUID bit, so
//! the `#[target_feature]` functions only ever run on silicon that has
//! them.
//!
//! The 8-block batch entry points mirror [`crate::aes_ct::AesCt`]'s so the
//! batched CTR hot path in [`crate::gcm`] slots onto either engine
//! unchanged; eight independent states keep the AESENC pipeline full
//! (latency ~4 cycles, throughput 1/cycle on current cores).

use core::arch::x86_64::{
    __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
    _mm_aesimc_si128, _mm_aeskeygenassist_si128, _mm_loadu_si128, _mm_setzero_si128,
    _mm_shuffle_epi32, _mm_slli_si128, _mm_storeu_si128, _mm_xor_si128,
};

use crate::aes::KeySize;

/// Room for the largest schedule (AES-256: 14 rounds + whitening key).
const MAX_RK: usize = 15;

/// An AES key expanded for the AES-NI lane.
///
/// Round keys are stored as plain byte arrays (loaded into vector
/// registers per call); both the encryption and the AESIMC-transformed
/// decryption schedules are wiped by [`AesNi::wipe`], which the owning
/// [`crate::aes::Aes`] invokes from its `Drop`.
#[derive(Clone)]
pub(crate) struct AesNi {
    /// Encryption round keys, `ek[0]` = whitening key.
    ek: [[u8; 16]; MAX_RK],
    /// Equivalent-inverse-cipher round keys, `dk[0]` = last encryption key.
    dk: [[u8; 16]; MAX_RK],
    rounds: usize,
}

impl AesNi {
    /// Expands `key` on the AES-NI schedule pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the CPU does not expose AES-NI (callers dispatch through
    /// [`crate::cpu`], which never selects this lane without it) or if the
    /// key length does not match `size`.
    pub(crate) fn new(key: &[u8], size: KeySize) -> AesNi {
        assert!(
            crate::cpu::hw_accel_available(),
            "AES-NI lane constructed on a CPU without AES/PCLMULQDQ"
        );
        assert_eq!(key.len(), size.nk() * 4, "AES key length mismatch");
        // SAFETY: the availability assert above guarantees the `aes`
        // target feature is present on this CPU.
        unsafe { AesNi::expand(key, size) }
    }

    /// The expanded encryption schedule (whitening key first), exposed so
    /// [`crate::aes::Aes`] can mirror it into its byte/word round-key
    /// forms without running the portable schedule a second time.
    pub(crate) fn round_keys(&self) -> &[[u8; 16]] {
        &self.ek[..=self.rounds]
    }

    #[target_feature(enable = "aes")]
    unsafe fn expand(key: &[u8], size: KeySize) -> AesNi {
        let rounds = size.nr();
        let mut w = [_mm_setzero_si128(); MAX_RK];
        match size {
            KeySize::Aes128 => {
                w[0] = _mm_loadu_si128(key.as_ptr() as *const __m128i);
                // One AESKEYGENASSIST per round key; the rcon immediate
                // must be a literal, hence the macro.
                macro_rules! rk {
                    ($i:expr, $rcon:expr) => {
                        w[$i] = fold_key(
                            w[$i - 1],
                            _mm_shuffle_epi32(
                                _mm_aeskeygenassist_si128(w[$i - 1], $rcon),
                                0xff,
                            ),
                        );
                    };
                }
                rk!(1, 0x01);
                rk!(2, 0x02);
                rk!(3, 0x04);
                rk!(4, 0x08);
                rk!(5, 0x10);
                rk!(6, 0x20);
                rk!(7, 0x40);
                rk!(8, 0x80);
                rk!(9, 0x1b);
                rk!(10, 0x36);
            }
            KeySize::Aes256 => {
                w[0] = _mm_loadu_si128(key.as_ptr() as *const __m128i);
                w[1] = _mm_loadu_si128(key.as_ptr().add(16) as *const __m128i);
                // Even round keys take RotWord+SubWord (the 0xff lane of
                // the assist) with the round constant; odd ones take
                // SubWord only (the 0xaa lane, rcon 0).
                macro_rules! even {
                    ($i:expr, $rcon:expr) => {
                        w[$i] = fold_key(
                            w[$i - 2],
                            _mm_shuffle_epi32(
                                _mm_aeskeygenassist_si128(w[$i - 1], $rcon),
                                0xff,
                            ),
                        );
                    };
                }
                macro_rules! odd {
                    ($i:expr) => {
                        w[$i] = fold_key(
                            w[$i - 2],
                            _mm_shuffle_epi32(
                                _mm_aeskeygenassist_si128(w[$i - 1], 0x00),
                                0xaa,
                            ),
                        );
                    };
                }
                even!(2, 0x01);
                odd!(3);
                even!(4, 0x02);
                odd!(5);
                even!(6, 0x04);
                odd!(7);
                even!(8, 0x08);
                odd!(9);
                even!(10, 0x10);
                odd!(11);
                even!(12, 0x20);
                odd!(13);
                even!(14, 0x40);
            }
        }
        // Equivalent Inverse Cipher schedule: reverse order, inner keys
        // through InvMixColumns (AESIMC).
        let mut d = [_mm_setzero_si128(); MAX_RK];
        d[0] = w[rounds];
        for i in 1..rounds {
            d[i] = _mm_aesimc_si128(w[rounds - i]);
        }
        d[rounds] = w[0];
        let mut out = AesNi { ek: [[0u8; 16]; MAX_RK], dk: [[0u8; 16]; MAX_RK], rounds };
        for i in 0..=rounds {
            _mm_storeu_si128(out.ek[i].as_mut_ptr() as *mut __m128i, w[i]);
            _mm_storeu_si128(out.dk[i].as_mut_ptr() as *mut __m128i, d[i]);
        }
        out
    }

    /// Encrypts one block. See the module docs for why the inner
    /// `unsafe` is sound.
    pub(crate) fn encrypt_block(&self, block: &mut [u8; 16]) {
        // SAFETY: `new` asserted AES-NI availability.
        unsafe { self.encrypt_block_impl(block) }
    }

    /// Decrypts one block.
    pub(crate) fn decrypt_block(&self, block: &mut [u8; 16]) {
        // SAFETY: `new` asserted AES-NI availability.
        unsafe { self.decrypt_block_impl(block) }
    }

    /// Encrypts eight independent blocks, interleaved to keep the AESENC
    /// pipeline saturated.
    pub(crate) fn encrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        // SAFETY: `new` asserted AES-NI availability.
        unsafe { self.encrypt_blocks8_impl(blocks) }
    }

    /// Decrypts eight independent blocks.
    pub(crate) fn decrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        // SAFETY: `new` asserted AES-NI availability.
        unsafe { self.decrypt_blocks8_impl(blocks) }
    }

    #[target_feature(enable = "aes")]
    unsafe fn encrypt_block_impl(&self, block: &mut [u8; 16]) {
        let mut s = _mm_loadu_si128(block.as_ptr() as *const __m128i);
        s = _mm_xor_si128(s, load(&self.ek[0]));
        for r in 1..self.rounds {
            s = _mm_aesenc_si128(s, load(&self.ek[r]));
        }
        s = _mm_aesenclast_si128(s, load(&self.ek[self.rounds]));
        _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, s);
    }

    #[target_feature(enable = "aes")]
    unsafe fn decrypt_block_impl(&self, block: &mut [u8; 16]) {
        let mut s = _mm_loadu_si128(block.as_ptr() as *const __m128i);
        s = _mm_xor_si128(s, load(&self.dk[0]));
        for r in 1..self.rounds {
            s = _mm_aesdec_si128(s, load(&self.dk[r]));
        }
        s = _mm_aesdeclast_si128(s, load(&self.dk[self.rounds]));
        _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, s);
    }

    #[target_feature(enable = "aes")]
    unsafe fn encrypt_blocks8_impl(&self, blocks: &mut [[u8; 16]; 8]) {
        let mut s = [_mm_setzero_si128(); 8];
        for (v, b) in s.iter_mut().zip(blocks.iter()) {
            *v = _mm_loadu_si128(b.as_ptr() as *const __m128i);
        }
        let k = load(&self.ek[0]);
        for v in s.iter_mut() {
            *v = _mm_xor_si128(*v, k);
        }
        for r in 1..self.rounds {
            let k = load(&self.ek[r]);
            for v in s.iter_mut() {
                *v = _mm_aesenc_si128(*v, k);
            }
        }
        let k = load(&self.ek[self.rounds]);
        for v in s.iter_mut() {
            *v = _mm_aesenclast_si128(*v, k);
        }
        for (v, b) in s.iter().zip(blocks.iter_mut()) {
            _mm_storeu_si128(b.as_mut_ptr() as *mut __m128i, *v);
        }
    }

    #[target_feature(enable = "aes")]
    unsafe fn decrypt_blocks8_impl(&self, blocks: &mut [[u8; 16]; 8]) {
        let mut s = [_mm_setzero_si128(); 8];
        for (v, b) in s.iter_mut().zip(blocks.iter()) {
            *v = _mm_loadu_si128(b.as_ptr() as *const __m128i);
        }
        let k = load(&self.dk[0]);
        for v in s.iter_mut() {
            *v = _mm_xor_si128(*v, k);
        }
        for r in 1..self.rounds {
            let k = load(&self.dk[r]);
            for v in s.iter_mut() {
                *v = _mm_aesdec_si128(*v, k);
            }
        }
        let k = load(&self.dk[self.rounds]);
        for v in s.iter_mut() {
            *v = _mm_aesdeclast_si128(*v, k);
        }
        for (v, b) in s.iter().zip(blocks.iter_mut()) {
            _mm_storeu_si128(b.as_mut_ptr() as *mut __m128i, *v);
        }
    }

    /// Volatile clear of both round-key schedules (invoked by
    /// [`crate::aes::Aes::drop`] via its `wipe`).
    pub(crate) fn wipe(&mut self) {
        crate::ct::zeroize(self.ek.as_flattened_mut());
        crate::ct::zeroize(self.dk.as_flattened_mut());
    }
}

impl std::fmt::Debug for AesNi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("AesNi").field("rounds", &self.rounds).finish()
    }
}

/// Loads one stored round key into a vector register (plain SSE2 load —
/// baseline on x86_64, so no feature gate needed).
#[inline(always)]
unsafe fn load(rk: &[u8; 16]) -> __m128i {
    _mm_loadu_si128(rk.as_ptr() as *const __m128i)
}

/// The schedule fold common to every AESKEYGENASSIST step: XOR the
/// previous key with itself shifted by 4, 8, and 12 bytes (propagating
/// each 32-bit word into the next), then mix in the assist word.
#[inline(always)]
unsafe fn fold_key(prev: __m128i, assist: __m128i) -> __m128i {
    let mut t = prev;
    let mut s = _mm_slli_si128(prev, 4);
    t = _mm_xor_si128(t, s);
    s = _mm_slli_si128(s, 4);
    t = _mm_xor_si128(t, s);
    s = _mm_slli_si128(s, 4);
    t = _mm_xor_si128(t, s);
    _mm_xor_si128(t, assist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes;
    use crate::test_util::unhex;
    use crate::CryptoProfile;

    /// Every test self-skips on silicon without AES-NI: the dispatch layer
    /// never selects this lane there, so there is nothing to test.
    fn hw() -> bool {
        crate::cpu::hw_accel_available()
    }

    #[test]
    fn fips197_vectors() {
        if !hw() {
            return;
        }
        let cases: [(&str, &str, &str); 3] = [
            (
                "2b7e151628aed2a6abf7158809cf4f3c",
                "3243f6a8885a308d313198a2e0370734",
                "3925841d02dc09fbdc118597196a0b32",
            ),
            (
                "000102030405060708090a0b0c0d0e0f",
                "00112233445566778899aabbccddeeff",
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                "00112233445566778899aabbccddeeff",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ];
        for (key_hex, plain_hex, cipher_hex) in cases {
            let key = unhex(key_hex);
            let size = if key.len() == 16 { KeySize::Aes128 } else { KeySize::Aes256 };
            let ni = AesNi::new(&key, size);
            let mut block: [u8; 16] = unhex(plain_hex).try_into().unwrap();
            ni.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), unhex(cipher_hex));
            ni.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), unhex(plain_hex));
        }
    }

    #[test]
    fn matches_fast_lane_on_random_keys() {
        if !hw() {
            return;
        }
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0xae5);
        for _ in 0..100 {
            let key16: [u8; 16] = rng.bytes();
            let key32: [u8; 32] = rng.bytes();
            for (key, size) in [(&key16[..], KeySize::Aes128), (&key32[..], KeySize::Aes256)] {
                let ni = AesNi::new(key, size);
                let fast = Aes::with_profile(key, size, CryptoProfile::Fast);
                let plain: [u8; 16] = rng.bytes();
                let mut a = plain;
                let mut b = plain;
                ni.encrypt_block(&mut a);
                fast.encrypt_block(&mut b);
                assert_eq!(a, b);
                ni.decrypt_block(&mut a);
                assert_eq!(a, plain);
            }
        }
    }

    #[test]
    fn blocks8_matches_single_block_path() {
        if !hw() {
            return;
        }
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0xb10c);
        for _ in 0..50 {
            let key: [u8; 32] = rng.bytes();
            let ni = AesNi::new(&key, KeySize::Aes256);
            let mut batch = [[0u8; 16]; 8];
            for b in batch.iter_mut() {
                *b = rng.bytes();
            }
            let plain = batch;
            let mut singles = batch;
            ni.encrypt_blocks8(&mut batch);
            for b in singles.iter_mut() {
                ni.encrypt_block(b);
            }
            assert_eq!(batch, singles);
            ni.decrypt_blocks8(&mut batch);
            assert_eq!(batch, plain);
        }
    }

    #[test]
    fn wipe_clears_both_schedules() {
        if !hw() {
            return;
        }
        let mut ni = AesNi::new(&[0x5a; 16], KeySize::Aes128);
        assert!(ni.ek.iter().any(|rk| rk.iter().any(|&b| b != 0)));
        assert!(ni.dk.iter().any(|rk| rk.iter().any(|&b| b != 0)));
        ni.wipe();
        assert!(ni.ek.iter().all(|rk| rk.iter().all(|&b| b == 0)));
        assert!(ni.dk.iter().all(|rk| rk.iter().all(|&b| b == 0)));
    }

    #[test]
    #[should_panic(expected = "AES key length mismatch")]
    fn wrong_key_length_panics() {
        if !hw() {
            // Keep the expected panic on no-HW machines too.
            panic!("AES key length mismatch");
        }
        let _ = AesNi::new(&[0u8; 17], KeySize::Aes128);
    }
}
