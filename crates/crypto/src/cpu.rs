//! Runtime CPU-feature detection and crypto-lane dispatch.
//!
//! The hardened [`crate::CryptoProfile::ConstantTime`] profile has two
//! interchangeable engines: the portable bitsliced lane
//! ([`crate::aes_ct`]/[`crate::ghash_ct`]) and the hardware lane
//! ([`crate::aes_ni`]/[`crate::ghash_clmul`]) built on AES-NI and
//! PCLMULQDQ. Both are constant-time and byte-identical; this module
//! decides which one a freshly expanded key uses:
//!
//! - on x86_64 with the AES and PCLMULQDQ CPUID bits set → hardware lane;
//! - forced portable (env `NEXUS_CRYPTO_FORCE_PORTABLE` or
//!   [`set_force_portable`], e.g. from `NexusConfig`) → bitsliced lane;
//! - any other architecture → bitsliced lane, unconditionally (the
//!   hardware modules are not even compiled there).
//!
//! Detection runs our own `CPUID` wrapper rather than
//! `is_x86_feature_detected!` so the dispatch logic stays auditable and
//! identical across std versions: leaf 1, `ECX` bit 25 (`AESNI`) and
//! bit 1 (`PCLMULQDQ`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::CryptoBackend;
use crate::CryptoProfile;

/// Environment variable that forces the portable bitsliced lane even when
/// the CPU advertises AES-NI/PCLMULQDQ. Any value other than empty or `0`
/// forces portable. Read once per process.
pub const FORCE_PORTABLE_ENV: &str = "NEXUS_CRYPTO_FORCE_PORTABLE";

/// Process-wide runtime override (set from `NexusConfig` at volume
/// create/mount). OR-ed with the environment variable; never un-forces it.
static FORCE_PORTABLE: AtomicBool = AtomicBool::new(false);

/// CPUID leaf 1 ECX bit 25: the AESENC/AESDEC/AESKEYGENASSIST family.
#[cfg(target_arch = "x86_64")]
const CPUID_ECX_AESNI: u32 = 1 << 25;
/// CPUID leaf 1 ECX bit 1: the PCLMULQDQ carryless multiply.
#[cfg(target_arch = "x86_64")]
const CPUID_ECX_PCLMULQDQ: u32 = 1 << 1;

/// True when the running CPU exposes both AES-NI and PCLMULQDQ, i.e. the
/// hardware lane can be constructed. Cached after the first query; always
/// false off x86_64.
pub fn hw_accel_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect_hw_accel)
}

#[cfg(target_arch = "x86_64")]
fn detect_hw_accel() -> bool {
    // CPUID is unprivileged and universally present on x86_64 (leaf 0
    // reports the max leaf; leaf 1 has existed since the 486).
    let max_leaf = core::arch::x86_64::__cpuid(0).eax;
    if max_leaf < 1 {
        return false;
    }
    let ecx = core::arch::x86_64::__cpuid(1).ecx;
    ecx & CPUID_ECX_AESNI != 0 && ecx & CPUID_ECX_PCLMULQDQ != 0
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_hw_accel() -> bool {
    false
}

/// True when the environment variable forces the portable lane.
fn env_force_portable() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var(FORCE_PORTABLE_ENV) {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    })
}

/// Forces (or releases the runtime half of) the portable-lane override.
/// The environment variable always wins: `set_force_portable(false)` never
/// re-enables hardware when `NEXUS_CRYPTO_FORCE_PORTABLE` is set.
///
/// Applied by `nexus-core` when `NexusConfig::force_portable_crypto` is set
/// at volume create/mount. Affects keys expanded *after* the call; already
/// constructed ciphers keep their lane (the lanes are byte-identical, so
/// mixing them is safe).
pub fn set_force_portable(on: bool) {
    FORCE_PORTABLE.store(on, Ordering::Relaxed);
}

/// Current effective force-portable state (env OR runtime flag).
pub fn force_portable() -> bool {
    env_force_portable() || FORCE_PORTABLE.load(Ordering::Relaxed)
}

/// The dispatch table as a pure function of its inputs, so tests can
/// assert every row without racing on process-global state.
pub fn backend_for_flags(hw_available: bool, force_portable: bool) -> CryptoBackend {
    if hw_available && !force_portable {
        CryptoBackend::HwAccel
    } else {
        CryptoBackend::Bitsliced
    }
}

/// The engine a [`crate::CryptoProfile::ConstantTime`] key expanded right
/// now would use.
pub fn constant_time_backend() -> CryptoBackend {
    backend_for_flags(hw_accel_available(), force_portable())
}

/// Resolves a profile to the concrete engine for a fresh key expansion.
pub(crate) fn backend_for(profile: CryptoProfile) -> CryptoBackend {
    match profile {
        CryptoProfile::Fast => CryptoBackend::Table,
        CryptoProfile::ConstantTime => constant_time_backend(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_table() {
        // CPUID present, no override → intrinsics.
        assert_eq!(backend_for_flags(true, false), CryptoBackend::HwAccel);
        // Forced portable → bitsliced, even with hardware present.
        assert_eq!(backend_for_flags(true, true), CryptoBackend::Bitsliced);
        // No hardware → bitsliced regardless of the override.
        assert_eq!(backend_for_flags(false, false), CryptoBackend::Bitsliced);
        assert_eq!(backend_for_flags(false, true), CryptoBackend::Bitsliced);
    }

    #[test]
    fn fast_profile_always_resolves_to_table() {
        assert_eq!(backend_for(CryptoProfile::Fast), CryptoBackend::Table);
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn non_x86_compiles_to_bitsliced_unconditionally() {
        assert!(!hw_accel_available());
        assert_eq!(constant_time_backend(), CryptoBackend::Bitsliced);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn detection_is_stable_and_consistent_with_cpuid() {
        // The cached answer must equal a fresh CPUID query.
        assert_eq!(hw_accel_available(), detect_hw_accel());
        assert_eq!(hw_accel_available(), detect_hw_accel());
    }

    /// Runtime override and its interaction with detection. One test (not
    /// several) because `set_force_portable` is process-global; everything
    /// else in the crate derives lane choice through `backend_for_flags`
    /// or explicit `with_backend` constructors, so this toggle does not
    /// race with other tests' correctness.
    #[test]
    fn runtime_override_forces_bitsliced() {
        set_force_portable(true);
        assert!(force_portable());
        assert_eq!(constant_time_backend(), CryptoBackend::Bitsliced);
        set_force_portable(false);
        // With the runtime flag cleared, the env var (unset in the test
        // runner) is the only remaining source of forcing.
        assert_eq!(force_portable(), env_force_portable());
        assert_eq!(
            constant_time_backend(),
            backend_for_flags(hw_accel_available(), env_force_portable())
        );
    }
}
