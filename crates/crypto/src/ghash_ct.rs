//! Constant-time GHASH/POLYVAL field multiplication.
//!
//! The Fast lane multiplies in GF(2^128) through key-dependent Shoup
//! tables ([`crate::gcm`]), indexing memory by nibbles of the (secret,
//! message-derived) multiplicand — a classic cache-timing channel that the
//! SGX threat model (untrusted co-resident OS, paper §III) makes worse,
//! not better. This module is the hardened replacement: a software
//! carryless multiply built from masked integer multiplications, so no
//! memory address and no branch ever depends on a secret or
//! message-derived value.
//!
//! The masked-multiply trick (Pornin, BearSSL `ghash_ctmul64`): an
//! ordinary integer multiply *is* a carryless multiply plus carries, and
//! the carries cannot reach 4 bit positions ahead if at most every 4th bit
//! of each operand is set. Splitting both operands into 4 such bit classes
//! yields the low 64 product bits from 16 integer multiplies; the high
//! half comes from the bit-reversal identity
//! `rev(clmul(x, y)) = clmul(rev(x), rev(y)) << 1`.
//!
//! Elements use the same representation as [`crate::gcm`]: a `u128` loaded
//! big-endian from the block, so bit `127 - i` holds the coefficient of
//! `t^i`. Multiplication un-reflects, multiplies, reduces mod
//! `t^128 + t^7 + t^2 + t + 1`, and re-reflects; `u128::reverse_bits`
//! compiles to data-independent bit shuffling.

/// Low 64 bits of the carryless product `x ⊗ y`.
///
/// Each wrapping multiply below combines one bit class of `x` with one of
/// `y`; products of classes `(i, j)` contribute only to result class
/// `(i + j) mod 4`, and the final mask strips the carry pollution that
/// accumulated in the other classes.
#[inline]
fn bmul64(x: u64, y: u64) -> u64 {
    const M0: u64 = 0x1111_1111_1111_1111;
    const M1: u64 = 0x2222_2222_2222_2222;
    const M2: u64 = 0x4444_4444_4444_4444;
    const M3: u64 = 0x8888_8888_8888_8888;
    let (x0, x1, x2, x3) = (x & M0, x & M1, x & M2, x & M3);
    let (y0, y1, y2, y3) = (y & M0, y & M1, y & M2, y & M3);
    let z0 = x0.wrapping_mul(y0) ^ x1.wrapping_mul(y3) ^ x2.wrapping_mul(y2) ^ x3.wrapping_mul(y1);
    let z1 = x0.wrapping_mul(y1) ^ x1.wrapping_mul(y0) ^ x2.wrapping_mul(y3) ^ x3.wrapping_mul(y2);
    let z2 = x0.wrapping_mul(y2) ^ x1.wrapping_mul(y1) ^ x2.wrapping_mul(y0) ^ x3.wrapping_mul(y3);
    let z3 = x0.wrapping_mul(y3) ^ x1.wrapping_mul(y2) ^ x2.wrapping_mul(y1) ^ x3.wrapping_mul(y0);
    (z0 & M0) | (z1 & M1) | (z2 & M2) | (z3 & M3)
}

/// Full 64×64 carryless product as `(low, high)` 64-bit halves.
#[inline]
fn clmul64(x: u64, y: u64) -> (u64, u64) {
    let lo = bmul64(x, y);
    // rev(x ⊗ y) = (rev(x) ⊗ rev(y)) << 1, so the high half of the 127-bit
    // product is the bit-reversed low half of the reversed operands.
    let hi = bmul64(x.reverse_bits(), y.reverse_bits()).reverse_bits() >> 1;
    (lo, hi)
}

/// Full 128×128 carryless product as `(low, high)` 128-bit halves
/// (Karatsuba over three 64×64 multiplies).
#[inline]
fn clmul128(a: u128, b: u128) -> (u128, u128) {
    let (a0, a1) = (a as u64, (a >> 64) as u64);
    let (b0, b1) = (b as u64, (b >> 64) as u64);
    let (p00l, p00h) = clmul64(a0, b0);
    let (p11l, p11h) = clmul64(a1, b1);
    let (pml, pmh) = clmul64(a0 ^ a1, b0 ^ b1);
    let p00 = (p00l as u128) | ((p00h as u128) << 64);
    let p11 = (p11l as u128) | ((p11h as u128) << 64);
    let mid = ((pml as u128) | ((pmh as u128) << 64)) ^ p00 ^ p11;
    (p00 ^ (mid << 64), p11 ^ (mid >> 64))
}

/// Constant-time multiplication in the GHASH field, same convention as
/// [`crate::gcm`]'s Shoup-table `table_mul` (big-endian-loaded `u128`,
/// reduction polynomial `t^128 + t^7 + t^2 + t + 1`).
///
/// No memory access and no branch depends on `x` or `y`.
pub(crate) fn ghash_mul_ct(x: u128, y: u128) -> u128 {
    // Un-reflect so bit i carries the coefficient of t^i.
    let a = x.reverse_bits();
    let b = y.reverse_bits();
    let (lo, hi) = clmul128(a, b);
    // Fold the high 127 bits: t^(128+j) ≡ t^j · (t^7 + t^2 + t + 1).
    let m = hi ^ (hi << 1) ^ (hi << 2) ^ (hi << 7);
    // Bits shifted out past position 127 need one more folding pass.
    let o = (hi >> 127) ^ (hi >> 126) ^ (hi >> 121);
    let m = m ^ o ^ (o << 1) ^ (o << 2) ^ (o << 7);
    (lo ^ m).reverse_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bitwise schoolbook reference in the same representation (mirrors
    /// `crate::gcm_siv::ghash_mul`, which is itself validated by the RFC
    /// 8452 vectors).
    fn ghash_mul_reference(x: u128, y: u128) -> u128 {
        const R: u128 = 0xe1 << 120;
        let mut z = 0u128;
        let mut v = y;
        for i in (0..128).rev() {
            if (x >> i) & 1 == 1 {
                z ^= v;
            }
            v = if v & 1 == 1 { (v >> 1) ^ R } else { v >> 1 };
        }
        z
    }

    #[test]
    fn bmul64_small_products() {
        // Carryless: (x + 1)(x + 1) = x^2 + 1, i.e. 3 ⊗ 3 = 5.
        assert_eq!(bmul64(3, 3), 5);
        assert_eq!(bmul64(0, u64::MAX), 0);
        assert_eq!(bmul64(1, 0xdead_beef), 0xdead_beef);
        assert_eq!(bmul64(2, 0x7fff_ffff_ffff_ffff), 0xffff_ffff_ffff_fffe);
    }

    #[test]
    fn clmul64_matches_shift_and_xor() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(41);
        for _ in 0..500 {
            let x = u64::from_le_bytes(rng.bytes());
            let y = u64::from_le_bytes(rng.bytes());
            let mut expect = 0u128;
            for i in 0..64 {
                if (y >> i) & 1 == 1 {
                    expect ^= (x as u128) << i;
                }
            }
            let (lo, hi) = clmul64(x, y);
            assert_eq!((lo as u128) | ((hi as u128) << 64), expect, "x={x:#x} y={y:#x}");
        }
    }

    #[test]
    fn ghash_mul_ct_matches_reference() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(42);
        for _ in 0..500 {
            let x = u128::from_le_bytes(rng.bytes());
            let y = u128::from_le_bytes(rng.bytes());
            assert_eq!(ghash_mul_ct(x, y), ghash_mul_reference(x, y), "x={x:#x} y={y:#x}");
        }
    }

    #[test]
    fn ghash_mul_ct_edge_operands() {
        let interesting = [
            0u128,
            1,
            1 << 127,
            u128::MAX,
            0xe1 << 120,
            0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
        ];
        for &x in &interesting {
            for &y in &interesting {
                assert_eq!(ghash_mul_ct(x, y), ghash_mul_reference(x, y), "x={x:#x} y={y:#x}");
            }
        }
    }

    #[test]
    fn ghash_mul_ct_is_commutative_and_distributive() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(43);
        for _ in 0..100 {
            let a = u128::from_le_bytes(rng.bytes());
            let b = u128::from_le_bytes(rng.bytes());
            let c = u128::from_le_bytes(rng.bytes());
            assert_eq!(ghash_mul_ct(a, b), ghash_mul_ct(b, a));
            assert_eq!(
                ghash_mul_ct(a ^ b, c),
                ghash_mul_ct(a, c) ^ ghash_mul_ct(b, c)
            );
        }
    }
}
