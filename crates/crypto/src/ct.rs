//! Constant-time helpers: branchless comparison and volatile zeroization.
//!
//! ## The public-length contract
//!
//! Every comparison in this module treats the *lengths* of its inputs as
//! public information and only their *contents* as secret. This is the one
//! place that contract is documented; every caller in the workspace
//! (AEAD tags, SGX measurements, keywrap tags) compares fixed-size values
//! whose length is structural, never attacker-chosen, so an early return on
//! a length mismatch reveals nothing.

/// Branchless equality of two equal-length byte slices, returned as a mask:
/// `0xff` when every byte matches, `0x00` otherwise. No branch or memory
/// access depends on the contents.
///
/// # Panics
///
/// Panics when the lengths differ — use [`ct_eq`] for the length-checking
/// `bool` form. (Lengths are public; see the module docs.)
pub fn ct_eq_mask(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "ct_eq_mask requires equal lengths");
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // 0 -> underflows to 0xff..; nonzero -> high bits clear after >> 8.
    ((diff as u16).wrapping_sub(1) >> 8) as u8
}

/// Compares two byte slices in constant time (with respect to contents).
///
/// Returns `false` immediately when lengths differ; lengths are public
/// information (see the module docs). The contents comparison is the
/// branchless mask of [`ct_eq_mask`].
///
/// # Examples
///
/// ```
/// assert!(nexus_crypto::ct::ct_eq(b"abc", b"abc"));
/// assert!(!nexus_crypto::ct::ct_eq(b"abc", b"abd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    ct_eq_mask(a, b) == 0xff
}

/// Marker trait for key-holding types whose `Drop` routes through the
/// volatile [`zeroize`] helpers; tests assert each such type implements it.
pub trait ZeroizeOnDrop {}

/// Best-effort volatile clear of a byte buffer.
///
/// `ptr::write_volatile` keeps the stores from being elided as dead writes,
/// and the compiler fence keeps them from being sunk past the buffer's
/// deallocation. "Best effort" because Rust offers no guarantee about
/// copies the optimizer already spilled elsewhere (moves, registers).
pub fn zeroize(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference.
        unsafe { std::ptr::write_volatile(b, 0) };
    }
    std::sync::atomic::compiler_fence(std::sync::atomic::Ordering::SeqCst);
}

/// [`zeroize`] for `u32` words (AES round-key words).
pub fn zeroize_u32(buf: &mut [u32]) {
    for w in buf.iter_mut() {
        // SAFETY: `w` is a valid, aligned, exclusive reference.
        unsafe { std::ptr::write_volatile(w, 0) };
    }
    std::sync::atomic::compiler_fence(std::sync::atomic::Ordering::SeqCst);
}

/// [`zeroize`] for `u128` words (GHASH/POLYVAL keys, Shoup tables,
/// bitsliced key planes).
pub fn zeroize_u128(buf: &mut [u128]) {
    for w in buf.iter_mut() {
        // SAFETY: `w` is a valid, aligned, exclusive reference.
        unsafe { std::ptr::write_volatile(w, 0) };
    }
    std::sync::atomic::compiler_fence(std::sync::atomic::Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn different_contents() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0], &[255]));
    }

    #[test]
    fn different_lengths() {
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn mask_values() {
        assert_eq!(ct_eq_mask(&[], &[]), 0xff);
        assert_eq!(ct_eq_mask(&[7; 32], &[7; 32]), 0xff);
        // Any single differing bit collapses the mask to zero.
        for bit in 0..8 {
            let a = [0u8; 4];
            let mut b = [0u8; 4];
            b[2] = 1 << bit;
            assert_eq!(ct_eq_mask(&a, &b), 0x00);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mask_panics_on_length_mismatch() {
        ct_eq_mask(&[1], &[1, 2]);
    }

    #[test]
    fn zeroize_clears() {
        let mut bytes = [0xaau8; 37];
        zeroize(&mut bytes);
        assert_eq!(bytes, [0u8; 37]);
        let mut words = [0xdead_beefu32; 9];
        zeroize_u32(&mut words);
        assert_eq!(words, [0u32; 9]);
        let mut wide = [u128::MAX; 5];
        zeroize_u128(&mut wide);
        assert_eq!(wide, [0u128; 5]);
    }
}
