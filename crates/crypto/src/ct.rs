//! Small constant-time helpers.
//!
//! The rest of this crate is correctness-oriented rather than hardened, but
//! tag and MAC comparisons still use constant-time equality so that the AEAD
//! APIs do not leak how many tag bytes matched.

/// Compares two byte slices in constant time (with respect to contents).
///
/// Returns `false` immediately when lengths differ; length is considered
/// public information for every use in this workspace.
///
/// # Examples
///
/// ```
/// assert!(nexus_crypto::ct::ct_eq(b"abc", b"abc"));
/// assert!(!nexus_crypto::ct::ct_eq(b"abc", b"abd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn different_contents() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0], &[255]));
    }

    #[test]
    fn different_lengths() {
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }
}
