//! # nexus-crypto
//!
//! From-scratch cryptographic primitives backing the NEXUS reproduction
//! (Djoko, Lange, Lee — DSN 2019):
//!
//! - [`aes`] — the AES block cipher (FIPS 197);
//! - [`gcm`] — AES-GCM AEAD (SP 800-38D), used for bulk metadata and file
//!   chunk encryption;
//! - [`gcm_siv`] — AES-GCM-SIV AEAD (RFC 8452), used to key-wrap per-metadata
//!   keys under the volume rootkey;
//! - [`sha2`] — SHA-256/512 (FIPS 180-4), used for enclave measurements;
//! - [`hmac`] — HMAC and HKDF, used for SGX sealing-key derivation;
//! - [`x25519`] — ECDH for the rootkey exchange protocol;
//! - [`ed25519`] — signatures for user identities and quotes;
//! - [`rng`] — pluggable randomness sources;
//! - [`ct`] — constant-time comparison.
//!
//! The paper's prototype links MbedTLS and Gueron et al.'s AES-GCM-SIV into
//! the enclave; this workspace has no such dependency available offline, so
//! the primitives are implemented directly from their specifications and
//! validated against the official test vectors (FIPS 197, the GCM spec
//! vectors, RFC 8452, RFC 4231, RFC 5869, RFC 7748, RFC 8032).
//!
//! ## Hardening note
//!
//! Two runtime profiles share every public API ([`CryptoProfile`]):
//!
//! - [`CryptoProfile::Fast`] encrypts through AES T-tables and Shoup-table
//!   GHASH/POLYVAL — written for correctness and auditability, but its
//!   table lookups are indexed by secret-derived values and therefore leak
//!   through caches;
//! - [`CryptoProfile::ConstantTime`] — the **default** — never indexes
//!   memory or branches on key or message bytes. It dispatches at key
//!   expansion between two engines ([`CryptoBackend`], chosen by
//!   [`cpu::constant_time_backend`]): on x86_64 CPUs advertising AES-NI
//!   and PCLMULQDQ, the hardware lane ([`aes_ni`], [`ghash_clmul`]) runs
//!   the cipher on dedicated silicon — constant-time *and* faster than
//!   the table lane; everywhere else (or when forced portable via
//!   [`cpu::FORCE_PORTABLE_ENV`]), the bitsliced AES ([`aes_ct`]) and
//!   masked carryless multiply ([`ghash_ct`]) fallback.
//!
//! All three lanes produce byte-identical output (differentially tested on
//! every RFC vector and by the cross-lane property suite), and the
//! `nexus-testkit` timing-leak harness flags the Fast lane while passing
//! the hardened ones. Tag comparisons are branchless in every profile
//! ([`ct::ct_eq`]), and key-holding types volatilely zeroize their material
//! on `Drop` ([`ct::zeroize`]) — including the hardware lane's round-key
//! and H-power state.
//!
//! ## Example
//!
//! ```
//! use nexus_crypto::gcm::AesGcm;
//! use nexus_crypto::rng::{OsRandom, SecureRandom};
//!
//! let mut rng = OsRandom::new();
//! let key: [u8; 32] = rng.bytes();
//! let nonce: [u8; 12] = rng.bytes();
//! let gcm = AesGcm::new_256(&key);
//! let sealed = gcm.seal(&nonce, b"context", b"file chunk bytes");
//! assert_eq!(gcm.open(&nonce, b"context", &sealed).unwrap(), b"file chunk bytes");
//! ```

pub mod aes;
pub(crate) mod aes_ct;
#[cfg(target_arch = "x86_64")]
pub(crate) mod aes_ni;
pub mod cpu;
pub mod ct;
pub mod ed25519;
pub mod field25519;
pub mod gcm;
pub mod gcm_siv;
#[cfg(target_arch = "x86_64")]
pub(crate) mod ghash_clmul;
pub(crate) mod ghash_ct;
pub mod hmac;
pub mod rng;
pub mod sha2;
pub mod x25519;

/// Which implementation lane the symmetric hot paths (AES, GHASH/POLYVAL)
/// run through. See the crate-level hardening note.
///
/// The profiles are bit-for-bit compatible: ciphertexts and tags are
/// identical, so data sealed under one profile opens under the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CryptoProfile {
    /// Table-driven lane: AES T-tables, Shoup-table GHASH/POLYVAL.
    /// Secret-indexed loads leak through caches — only for benchmarks and
    /// differential testing, no longer the default.
    Fast,
    /// Hardened lane (the default): no secret-dependent memory access or
    /// branch. Runs on AES-NI + PCLMULQDQ where the CPU has them
    /// ([`CryptoBackend::HwAccel`]), which also makes it the *fastest*
    /// lane there; falls back to bitsliced AES and masked
    /// carryless-multiply GHASH/POLYVAL ([`CryptoBackend::Bitsliced`]).
    #[default]
    ConstantTime,
}

/// The concrete engine a key was expanded for — the dispatch tier below
/// [`CryptoProfile`]. Which backend `ConstantTime` resolves to is decided
/// at key-expansion time by [`cpu::constant_time_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoBackend {
    /// T-table / Shoup-table engine ([`CryptoProfile::Fast`]).
    Table,
    /// Portable bitsliced + masked-multiply engine.
    Bitsliced,
    /// AES-NI + PCLMULQDQ intrinsics engine (x86_64 with the CPUID bits).
    HwAccel,
}

/// Authenticated decryption failed: the ciphertext or its associated data
/// was modified, or the wrong key/nonce was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("authenticated decryption failed")
    }
}

impl std::error::Error for AeadError {}

/// Signature verification or parsing failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid signature")
    }
}

impl std::error::Error for SignatureError {}

/// Hex helpers shared by the test suites of every module.
#[cfg(test)]
pub(crate) mod test_util {
    /// Encodes bytes as lowercase hex.
    pub fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Decodes a hex string, ignoring ASCII whitespace.
    ///
    /// # Panics
    ///
    /// Panics on non-hex input (tests only).
    pub fn unhex(s: &str) -> Vec<u8> {
        let cleaned: String = s.chars().filter(|c| !c.is_ascii_whitespace()).collect();
        assert!(cleaned.len().is_multiple_of(2), "odd hex length");
        (0..cleaned.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&cleaned[i..i + 2], 16).expect("hex"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(AeadError.to_string(), "authenticated decryption failed");
        assert_eq!(SignatureError.to_string(), "invalid signature");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AeadError>();
        assert_send_sync::<SignatureError>();
    }
}
