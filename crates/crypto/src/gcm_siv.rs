//! AES-GCM-SIV nonce-misuse-resistant AEAD (RFC 8452).
//!
//! NEXUS uses AES-GCM-SIV for *key wrapping*: every metadata object carries
//! its own AES-GCM key, stored wrapped under the volume rootkey. The paper
//! (§IV-A2) follows Gueron et al. and uses the GCM-SIV construction because a
//! misuse-resistant AEAD is the safe primitive for wrapping many small keys.
//!
//! # Examples
//!
//! ```
//! use nexus_crypto::gcm_siv::AesGcmSiv;
//!
//! let siv = AesGcmSiv::new_256(&[3u8; 32]);
//! let wrapped = siv.seal(&[0u8; 12], b"metadata-uuid", &[0x42; 16]);
//! assert_eq!(siv.open(&[0u8; 12], b"metadata-uuid", &wrapped).unwrap(), vec![0x42; 16]);
//! ```

use crate::aes::{Aes, KeySize};
use crate::ct::ct_eq;
use crate::gcm::{build_table, table_mul, ShoupTable, GHASH_BATCH_MIN};
use crate::ghash_ct::ghash_mul_ct;
use crate::{AeadError, CryptoBackend, CryptoProfile};

/// Length in bytes of the GCM-SIV authentication tag.
pub const TAG_LEN: usize = 16;
/// Length in bytes of the GCM-SIV nonce.
pub const NONCE_LEN: usize = 12;

/// Multiplication in the GHASH field (same convention as `crate::gcm`).
fn ghash_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in (0..128).rev() {
        if (x >> i) & 1 == 1 {
            z ^= v;
        }
        if v & 1 == 1 {
            v = (v >> 1) ^ R;
        } else {
            v >>= 1;
        }
    }
    z
}

/// Multiplies a GHASH field element by `x` (RFC 8452 appendix A, `mulX_GHASH`).
fn mul_x_ghash(v: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    if v & 1 == 1 {
        (v >> 1) ^ R
    } else {
        v >> 1
    }
}

fn byte_reverse(b: &[u8; 16]) -> [u8; 16] {
    let mut out = *b;
    out.reverse();
    out
}

/// The POLYVAL key mapped into the GHASH domain, plus lazily built Shoup
/// tables for H^1..H^8 powering the 8-blocks-per-pass batch (the same
/// scheme [`crate::gcm`] uses for GHASH — the appendix-A equivalence puts
/// all arithmetic in the GHASH representation, so the tables apply
/// unchanged). Tables are built at most once per instance and only when a
/// bulk update actually arrives; key-wrap-sized inputs never pay for them.
#[derive(Clone)]
struct PolyvalKey {
    h: u128,
    /// Lane selection: the constant-time backends skip every Shoup table
    /// and multiply through PCLMULQDQ ([`crate::ghash_clmul`]) or the
    /// masked portable path ([`crate::ghash_ct`]).
    backend: CryptoBackend,
    /// `batch[k]` is the table for H^(k+1); index 7 is H^8 (Table lane only).
    batch: std::cell::OnceCell<Box<[ShoupTable; 8]>>,
}

impl PolyvalKey {
    /// Scalar multiplication by H in the lane's arithmetic.
    #[inline]
    fn mul(&self, x: u128) -> u128 {
        match self.backend {
            CryptoBackend::Table => ghash_mul(x, self.h),
            #[cfg(target_arch = "x86_64")]
            CryptoBackend::HwAccel => crate::ghash_clmul::ghash_mul_hw(x, self.h),
            _ => ghash_mul_ct(x, self.h),
        }
    }

    /// Powers H^1..H^8 for the batched Horner recurrence (index 7 = H^8).
    fn h_powers(&self) -> [u128; 8] {
        let mut pow = [0u128; 8];
        pow[0] = self.h;
        for k in 1..8 {
            pow[k] = self.mul(pow[k - 1]);
        }
        pow
    }

    fn batch_tables(&self) -> &[ShoupTable; 8] {
        self.batch.get_or_init(|| {
            let mut tables = Box::new([[[0u128; 16]; 32]; 8]);
            for (k, h) in self.h_powers().iter().enumerate() {
                tables[k] = *build_table(*h);
            }
            tables
        })
    }
}

/// POLYVAL (RFC 8452 §3) implemented via the GHASH equivalence in appendix A:
/// `POLYVAL(H, X_1..X_n) = ByteReverse(GHASH(mulX_GHASH(ByteReverse(H)), ByteReverse(X_1)..))`.
#[derive(Clone)]
struct Polyval {
    key: PolyvalKey,
    acc: u128,
    /// When false, force the scalar one-block-at-a-time path (reference
    /// implementation used for differential testing).
    batch_enabled: bool,
}

impl std::fmt::Debug for Polyval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Polyval { .. }")
    }
}

impl Polyval {
    fn new(h: &[u8; 16], backend: CryptoBackend) -> Polyval {
        let h_ghash = mul_x_ghash(u128::from_be_bytes(byte_reverse(h)));
        Polyval {
            key: PolyvalKey { h: h_ghash, backend, batch: std::cell::OnceCell::new() },
            acc: 0,
            batch_enabled: true,
        }
    }

    fn new_scalar(h: &[u8; 16], backend: CryptoBackend) -> Polyval {
        let mut pv = Polyval::new(h, backend);
        pv.batch_enabled = false;
        pv
    }

    /// Absorbs `data` in 16-byte blocks, zero-padding the final partial one.
    ///
    /// Large updates run 8 blocks per pass with the Horner recurrence
    /// `Y' = (Y ^ X1)·H^8 ^ X2·H^7 ^ … ^ X8·H`, exactly as the batched
    /// GHASH in [`crate::gcm`]; short updates keep the table-free scalar
    /// multiply.
    fn update_padded(&mut self, data: &[u8]) {
        let mut rest = data;
        if self.batch_enabled && data.len() >= GHASH_BATCH_MIN {
            rest = self.update_batched(rest);
        }
        for chunk in rest.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.update_block(&block);
        }
    }

    /// Absorbs as many full 128-byte groups of `data` as possible with the
    /// 8-block Horner recurrence, returning the unconsumed remainder.
    fn update_batched<'a>(&mut self, data: &'a [u8]) -> &'a [u8] {
        // The hardware lane XOR-sums the eight unreduced PCLMULQDQ
        // products and reduces once per group (aggregated reduction).
        #[cfg(target_arch = "x86_64")]
        if self.key.backend == CryptoBackend::HwAccel {
            let hpow = self.key.h_powers();
            let hs: [u128; 8] = std::array::from_fn(|j| hpow[7 - j]);
            let mut batches = data.chunks_exact(128);
            for batch in &mut batches {
                let mut xs = [0u128; 8];
                for (j, x) in xs.iter_mut().enumerate() {
                    let block: [u8; 16] = batch[j * 16..j * 16 + 16].try_into().unwrap();
                    *x = u128::from_be_bytes(byte_reverse(&block));
                }
                xs[0] ^= self.acc;
                self.acc = crate::ghash_clmul::ghash_mul_sum_hw(&xs, &hs);
            }
            return batches.remainder();
        }
        // The portable CT lane recomputes the eight H powers per bulk
        // update (7 scalar multiplies, amortized over >= 512 block
        // multiplies) rather than keeping another cached table of key
        // material.
        let tables = match self.key.backend {
            CryptoBackend::Table => Some(self.key.batch_tables()),
            _ => None,
        };
        let hpow = self.key.h_powers();
        let mut batches = data.chunks_exact(128);
        for batch in &mut batches {
            let mut z = 0u128;
            for j in 0..8 {
                let block: [u8; 16] = batch[j * 16..j * 16 + 16].try_into().unwrap();
                let mut x = u128::from_be_bytes(byte_reverse(&block));
                if j == 0 {
                    x ^= self.acc;
                }
                z ^= match tables {
                    Some(t) => table_mul(&t[7 - j], x),
                    None => ghash_mul_ct(x, hpow[7 - j]),
                };
            }
            self.acc = z;
        }
        batches.remainder()
    }

    fn update_block(&mut self, block: &[u8; 16]) {
        let x = u128::from_be_bytes(byte_reverse(block));
        self.acc = self.key.mul(self.acc ^ x);
    }

    fn finalize(self) -> [u8; 16] {
        byte_reverse(&self.acc.to_be_bytes())
    }

    /// Volatile best-effort clear of the mapped key, accumulator, and any
    /// cached batch tables (also invoked by `Drop`).
    fn wipe(&mut self) {
        crate::ct::zeroize_u128(std::slice::from_mut(&mut self.key.h));
        crate::ct::zeroize_u128(std::slice::from_mut(&mut self.acc));
        if let Some(mut b) = self.key.batch.take() {
            for t in b.iter_mut() {
                crate::ct::zeroize_u128(t.as_flattened_mut());
            }
        }
    }
}

impl Drop for Polyval {
    fn drop(&mut self) {
        self.wipe();
    }
}

/// An AES-GCM-SIV sealing/opening context bound to one key-generating key.
///
/// The key-generating key's schedule is expanded once at construction and
/// cached for the lifetime of the context — per-nonce key derivation
/// (RFC 8452 §4) is six block encryptions under the *same* key, so
/// re-expanding it on every seal/open would dominate keywrap cost. The
/// cached [`Aes`] volatilely zeroizes its round keys on drop.
#[derive(Clone)]
pub struct AesGcmSiv {
    kgk: Aes,
    key_len: usize,
}

impl std::fmt::Debug for AesGcmSiv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AesGcmSiv { .. }")
    }
}

impl AesGcmSiv {
    /// Creates a context from a 16- or 32-byte key-generating key.
    ///
    /// # Panics
    ///
    /// Panics if the key is not 16 or 32 bytes.
    pub fn new(key: &[u8]) -> AesGcmSiv {
        AesGcmSiv::with_profile(key, CryptoProfile::default())
    }

    /// Creates a context in the given lane; the ConstantTime lane runs AES
    /// and POLYVAL through hardware intrinsics or the table-free portable
    /// fallback ([`crate::cpu::constant_time_backend`]), with output
    /// byte-identical to the Fast lane.
    ///
    /// # Panics
    ///
    /// Panics if the key is not 16 or 32 bytes.
    pub fn with_profile(key: &[u8], profile: CryptoProfile) -> AesGcmSiv {
        AesGcmSiv::with_backend(key, crate::cpu::backend_for(profile))
    }

    /// Creates a context pinned to a concrete engine (differential tests
    /// and benchmarks; normal callers go through [`AesGcmSiv::new`] or
    /// [`AesGcmSiv::with_profile`]).
    ///
    /// # Panics
    ///
    /// Panics if the key is not 16 or 32 bytes, or if `HwAccel` is
    /// requested on a CPU without AES-NI + PCLMULQDQ.
    pub fn with_backend(key: &[u8], backend: CryptoBackend) -> AesGcmSiv {
        let size = match key.len() {
            16 => KeySize::Aes128,
            32 => KeySize::Aes256,
            n => panic!("AES-GCM-SIV key must be 16 or 32 bytes, got {n}"),
        };
        AesGcmSiv { kgk: Aes::with_backend(key, size, backend), key_len: key.len() }
    }

    /// The lane this context was created for.
    pub fn profile(&self) -> CryptoProfile {
        self.kgk.profile()
    }

    /// The concrete engine the cached key schedule was expanded for.
    pub fn backend(&self) -> CryptoBackend {
        self.kgk.backend()
    }

    /// Creates an AES-128-GCM-SIV context.
    pub fn new_128(key: &[u8; 16]) -> AesGcmSiv {
        AesGcmSiv::new(key)
    }

    /// Creates an AES-256-GCM-SIV context.
    pub fn new_256(key: &[u8; 32]) -> AesGcmSiv {
        AesGcmSiv::new(key)
    }

    /// Per-nonce key derivation (RFC 8452 §4), running six block
    /// encryptions under the cached key-generating-key schedule.
    fn derive_keys(&self, nonce: &[u8; NONCE_LEN]) -> ([u8; 16], Vec<u8>) {
        let half = |counter: u32| -> [u8; 8] {
            let mut block = [0u8; 16];
            block[..4].copy_from_slice(&counter.to_le_bytes());
            block[4..].copy_from_slice(nonce);
            self.kgk.encrypt_block(&mut block);
            block[..8].try_into().expect("8-byte half")
        };
        let mut auth_key = [0u8; 16];
        auth_key[..8].copy_from_slice(&half(0));
        auth_key[8..].copy_from_slice(&half(1));
        let enc_key_len = self.key_len;
        let mut enc_key = Vec::with_capacity(enc_key_len);
        enc_key.extend_from_slice(&half(2));
        enc_key.extend_from_slice(&half(3));
        if enc_key_len == 32 {
            enc_key.extend_from_slice(&half(4));
            enc_key.extend_from_slice(&half(5));
        }
        (auth_key, enc_key)
    }

    fn polyval_tag(
        auth_key: &[u8; 16],
        enc: &Aes,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> [u8; 16] {
        Self::polyval_tag_inner(auth_key, enc, nonce, aad, plaintext, true)
    }

    fn polyval_tag_inner(
        auth_key: &[u8; 16],
        enc: &Aes,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        batch: bool,
    ) -> [u8; 16] {
        let backend = enc.backend();
        let mut pv =
            if batch { Polyval::new(auth_key, backend) } else { Polyval::new_scalar(auth_key, backend) };
        pv.update_padded(aad);
        pv.update_padded(plaintext);
        let mut len_block = [0u8; 16];
        len_block[..8].copy_from_slice(&((aad.len() as u64) * 8).to_le_bytes());
        len_block[8..].copy_from_slice(&((plaintext.len() as u64) * 8).to_le_bytes());
        pv.update_block(&len_block);
        let mut s = pv.finalize();
        for (b, n) in s.iter_mut().zip(nonce.iter()) {
            *b ^= n;
        }
        s[15] &= 0x7f;
        enc.encrypt_block(&mut s);
        s
    }

    /// Builds the per-nonce record-encryption cipher and volatilely clears
    /// the raw derived key bytes (the expanded form lives inside the
    /// returned [`Aes`], which zeroizes itself on drop).
    fn enc_cipher(&self, enc_key: &mut Vec<u8>) -> Aes {
        let size = if enc_key.len() == 16 { KeySize::Aes128 } else { KeySize::Aes256 };
        let enc = Aes::with_backend(enc_key, size, self.kgk.backend());
        crate::ct::zeroize(enc_key);
        enc
    }

    /// AES-CTR with the GCM-SIV convention: 32-bit little-endian counter in
    /// the first four bytes.
    fn ctr_xor(enc: &Aes, tag: &[u8; 16], data: &mut [u8]) {
        let mut block = *tag;
        block[15] |= 0x80;
        let mut counter = u32::from_le_bytes(block[..4].try_into().unwrap());
        for chunk in data.chunks_mut(16) {
            let mut ks = block;
            ks[..4].copy_from_slice(&counter.to_le_bytes());
            enc.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// Encrypts `plaintext`, returning the ciphertext and detached tag.
    pub fn seal_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; TAG_LEN]) {
        let (mut auth_key, mut enc_key) = self.derive_keys(nonce);
        let enc = self.enc_cipher(&mut enc_key);
        let tag = Self::polyval_tag(&auth_key, &enc, nonce, aad, plaintext);
        crate::ct::zeroize(&mut auth_key);
        let mut ct = plaintext.to_vec();
        Self::ctr_xor(&enc, &tag, &mut ct);
        (ct, tag)
    }

    /// Reference implementation of [`AesGcmSiv::seal_detached`] that forces
    /// the scalar one-block POLYVAL. Kept for differential tests and the
    /// scalar-vs-batched benchmark; not part of the public API surface.
    #[doc(hidden)]
    pub fn seal_detached_scalar(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; TAG_LEN]) {
        let (mut auth_key, mut enc_key) = self.derive_keys(nonce);
        let enc = self.enc_cipher(&mut enc_key);
        let tag = Self::polyval_tag_inner(&auth_key, &enc, nonce, aad, plaintext, false);
        crate::ct::zeroize(&mut auth_key);
        let mut ct = plaintext.to_vec();
        Self::ctr_xor(&enc, &tag, &mut ct);
        (ct, tag)
    }

    /// Encrypts `plaintext` and returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let (mut ct, tag) = self.seal_detached(nonce, aad, plaintext);
        ct.extend_from_slice(&tag);
        ct
    }

    /// Verifies and decrypts a detached-tag ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] when the tag does not verify.
    pub fn open_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<Vec<u8>, AeadError> {
        let (mut auth_key, mut enc_key) = self.derive_keys(nonce);
        let enc = self.enc_cipher(&mut enc_key);
        let mut pt = ciphertext.to_vec();
        Self::ctr_xor(&enc, tag, &mut pt);
        let expected = Self::polyval_tag(&auth_key, &enc, nonce, aad, &pt);
        crate::ct::zeroize(&mut auth_key);
        if !ct_eq(&expected, tag) {
            return Err(AeadError);
        }
        Ok(pt)
    }

    /// Opens a `ciphertext || tag` buffer produced by [`AesGcmSiv::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`AeadError`] if the buffer is too short or the tag fails.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let tag: [u8; TAG_LEN] = tag.try_into().expect("split length");
        self.open_detached(nonce, aad, ct, &tag)
    }
}

// No `Drop` of its own: the only key material is the cached `Aes`
// schedule, which zeroizes itself.
impl crate::ct::ZeroizeOnDrop for AesGcmSiv {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{hex, unhex};

    /// Every engine available on this machine: the table lane, the
    /// portable bitsliced lane, and (where CPUID allows) the hardware lane.
    fn backends() -> Vec<CryptoBackend> {
        let mut v = vec![CryptoBackend::Table, CryptoBackend::Bitsliced];
        if crate::cpu::hw_accel_available() {
            v.push(CryptoBackend::HwAccel);
        }
        v
    }

    /// Every vector runs under every lane: the hardened engines must
    /// reproduce the RFC 8452 ciphertext and tag bit-for-bit.
    fn check(key: &str, nonce: &str, pt: &str, aad: &str, expect_ct_and_tag: &str) {
        for backend in backends() {
            let siv = AesGcmSiv::with_backend(&unhex(key), backend);
            let n: [u8; 12] = unhex(nonce).try_into().unwrap();
            let sealed = siv.seal(&n, &unhex(aad), &unhex(pt));
            assert_eq!(hex(&sealed), expect_ct_and_tag, "sealed ({backend:?})");
            let opened = siv.open(&n, &unhex(aad), &sealed).unwrap();
            assert_eq!(hex(&opened), pt, "roundtrip ({backend:?})");
        }
    }

    // Vectors from RFC 8452 appendix C.1 (AES-128-GCM-SIV).
    #[test]
    fn rfc8452_aes128_empty() {
        check(
            "01000000000000000000000000000000",
            "030000000000000000000000",
            "",
            "",
            "dc20e2d83f25705bb49e439eca56de25",
        );
    }

    #[test]
    fn rfc8452_aes128_8_bytes() {
        check(
            "01000000000000000000000000000000",
            "030000000000000000000000",
            "0100000000000000",
            "",
            "b5d839330ac7b786578782fff6013b815b287c22493a364c",
        );
    }

    #[test]
    fn rfc8452_aes128_12_bytes() {
        check(
            "01000000000000000000000000000000",
            "030000000000000000000000",
            "010000000000000000000000",
            "",
            "7323ea61d05932260047d942a4978db357391a0bc4fdec8b0d106639",
        );
    }

    #[test]
    fn rfc8452_aes128_16_bytes() {
        check(
            "01000000000000000000000000000000",
            "030000000000000000000000",
            "01000000000000000000000000000000",
            "",
            "743f7c8077ab25f8624e2e948579cf77303aaf90f6fe21199c6068577437a0c4",
        );
    }

    // Vectors from RFC 8452 appendix C.2 (AES-256-GCM-SIV).
    #[test]
    fn rfc8452_aes256_empty() {
        check(
            "0100000000000000000000000000000000000000000000000000000000000000",
            "030000000000000000000000",
            "",
            "",
            "07f5f4169bbf55a8400cd47ea6fd400f",
        );
    }

    #[test]
    fn rfc8452_aes256_8_bytes() {
        check(
            "0100000000000000000000000000000000000000000000000000000000000000",
            "030000000000000000000000",
            "0100000000000000",
            "",
            "c2ef328e5c71c83b843122130f7364b761e0b97427e3df28",
        );
    }

    #[test]
    fn nonce_misuse_same_inputs_same_output() {
        // SIV is deterministic for identical (key, nonce, aad, pt).
        let siv = AesGcmSiv::new_256(&[1u8; 32]);
        let a = siv.seal(&[2u8; 12], b"aad", b"payload");
        let b = siv.seal(&[2u8; 12], b"aad", b"payload");
        assert_eq!(a, b);
    }

    #[test]
    fn tamper_detection() {
        let siv = AesGcmSiv::new_256(&[1u8; 32]);
        let mut sealed = siv.seal(&[2u8; 12], b"aad", b"payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert!(siv.open(&[2u8; 12], b"aad", &sealed).is_err());
    }

    #[test]
    fn wrong_aad_rejected() {
        let siv = AesGcmSiv::new_128(&[1u8; 16]);
        let sealed = siv.seal(&[2u8; 12], b"aad", b"payload");
        assert!(siv.open(&[2u8; 12], b"other", &sealed).is_err());
    }

    #[test]
    fn roundtrip_various_lengths() {
        let siv = AesGcmSiv::new_256(&[0x55; 32]);
        for len in [0usize, 1, 15, 16, 17, 47, 64, 300] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let sealed = siv.seal(&[9u8; 12], b"ctx", &pt);
            assert_eq!(siv.open(&[9u8; 12], b"ctx", &sealed).unwrap(), pt, "len={len}");
        }
    }

    /// Every hardened lane must agree bit-for-bit with the table lane,
    /// including keywrap-sized inputs and lengths that cross the POLYVAL
    /// batching threshold.
    #[test]
    fn constant_time_lanes_match_fast_lane() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0x517);
        for key in [vec![0x66u8; 16], vec![0x77u8; 32]] {
            let fast = AesGcmSiv::with_backend(&key, CryptoBackend::Table);
            for backend in backends().into_iter().filter(|&b| b != CryptoBackend::Table) {
                let hard = AesGcmSiv::with_backend(&key, backend);
                for len in [0usize, 16, 32, 127, 128, 129, 1000, 8191, 8192, 8193, 20_000] {
                    let mut pt = vec![0u8; len];
                    rng.fill(&mut pt);
                    let mut nonce = [0u8; 12];
                    rng.fill(&mut nonce);
                    let (ct_f, tag_f) = fast.seal_detached(&nonce, b"wrap", &pt);
                    let (ct_c, tag_c) = hard.seal_detached(&nonce, b"wrap", &pt);
                    assert_eq!(ct_f, ct_c, "ciphertext diverged at len {len} ({backend:?})");
                    assert_eq!(tag_f, tag_c, "tag diverged at len {len} ({backend:?})");
                    // Cross-lane open: wrapped Fast, unwrapped hardened.
                    assert_eq!(hard.open_detached(&nonce, b"wrap", &ct_f, &tag_f).unwrap(), pt);
                }
            }
        }
    }

    #[test]
    fn default_profile_is_constant_time() {
        let siv = AesGcmSiv::new_256(&[7u8; 32]);
        assert_eq!(siv.profile(), CryptoProfile::ConstantTime);
        assert_ne!(siv.backend(), CryptoBackend::Table);
    }

    #[test]
    fn polyval_wipe_clears_key_and_accumulator() {
        for backend in backends() {
            let mut pv = Polyval::new(&[0x5au8; 16], backend);
            pv.update_padded(&[0x11u8; 64]);
            pv.wipe();
            assert_eq!(pv.key.h, 0);
            assert_eq!(pv.acc, 0);
            assert!(pv.key.batch.get().is_none());
        }
    }

    /// The 8-block batched POLYVAL must agree bit-for-bit with the scalar
    /// reference at every alignment: below the batching threshold, exactly
    /// at it, just past it, at non-128-byte remainders, and with AAD large
    /// enough to batch on its own.
    #[test]
    fn batched_polyval_matches_scalar_reference() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0x51f);
        for key in [vec![0x33u8; 16], vec![0x44u8; 32]] {
            let siv = AesGcmSiv::new(&key);
            for len in
                [0usize, 16, 127, 128, 129, 8191, 8192, 8193, 8320, 9000, 65_536]
            {
                let mut pt = vec![0u8; len];
                rng.fill(&mut pt);
                let mut nonce = [0u8; 12];
                rng.fill(&mut nonce);
                let (ct_fast, tag_fast) = siv.seal_detached(&nonce, b"aad", &pt);
                let (ct_ref, tag_ref) = siv.seal_detached_scalar(&nonce, b"aad", &pt);
                assert_eq!(ct_fast, ct_ref, "ciphertext diverged at len {len}");
                assert_eq!(tag_fast, tag_ref, "tag diverged at len {len}");
                assert_eq!(siv.open(&nonce, b"aad", &siv.seal(&nonce, b"aad", &pt)).unwrap(), pt);
            }
            // Batching driven by the AAD alone (plaintext stays tiny).
            let mut aad = vec![0u8; 10_000];
            rng.fill(&mut aad);
            let (ct_fast, tag_fast) = siv.seal_detached(&[7u8; 12], &aad, b"small");
            let (ct_ref, tag_ref) = siv.seal_detached_scalar(&[7u8; 12], &aad, b"small");
            assert_eq!((ct_fast, tag_fast), (ct_ref, tag_ref), "aad-driven batch diverged");
        }
    }
}
