//! The AES block cipher (FIPS 197), supporting 128- and 256-bit keys.
//!
//! Three engines live behind one API, selected at key expansion
//! ([`CryptoProfile`] / [`CryptoBackend`]): the [`CryptoProfile::Fast`]
//! lane encrypts through fused T-tables and decrypts byte-oriented, both
//! indexing tables by secret-derived values; the default
//! [`CryptoProfile::ConstantTime`] profile resolves through
//! [`crate::cpu`] to either the AES-NI engine ([`crate::aes_ni`], on
//! x86_64 CPUs that have it — constant-time on dedicated silicon and
//! faster than the tables) or the portable bitsliced [`crate::aes_ct`]
//! engine, whose keys expand through an algebraic S-box so no memory
//! access depends on key or data bytes. All lanes are the foundation for
//! the [`crate::gcm`] and [`crate::gcm_siv`] AEAD modes used throughout
//! NEXUS and produce identical ciphertext.
//!
//! # Examples
//!
//! ```
//! use nexus_crypto::aes::Aes;
//!
//! let key = [0u8; 16];
//! let aes = Aes::new_128(&key);
//! let mut block = *b"sixteen byte msg";
//! let original = block;
//! aes.encrypt_block(&mut block);
//! aes.decrypt_block(&mut block);
//! assert_eq!(block, original);
//! ```

use crate::aes_ct::{self, AesCt};
#[cfg(target_arch = "x86_64")]
use crate::aes_ni::AesNi;
use crate::{CryptoBackend, CryptoProfile};

/// The AES S-box (crate-visible so the bitsliced lane's tests can verify
/// their algebraic S-box against it for all 256 inputs).
pub(crate) const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

/// The inverse AES S-box.
pub(crate) const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7,
    0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde,
    0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42,
    0xfa, 0xc3, 0x4e, 0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c,
    0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15,
    0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84, 0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7,
    0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc,
    0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73, 0x96, 0xac, 0x74, 0x22, 0xe7, 0xad,
    0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d,
    0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4, 0x1f, 0xdd, 0xa8,
    0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f, 0x60, 0x51,
    0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0,
    0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c,
    0x7d,
];

/// Round constants used by the key schedule.
const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by `x` in GF(2^8) with the AES reduction polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// Multiply two elements of GF(2^8).
#[inline]
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// AES key size, selecting the number of rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// AES-128 (10 rounds).
    Aes128,
    /// AES-256 (14 rounds).
    Aes256,
}

impl KeySize {
    /// Number of 32-bit words in the key.
    pub(crate) fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes256 => 8,
        }
    }

    /// Number of rounds.
    pub(crate) fn nr(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }
}

/// Encryption T-tables (SubBytes + ShiftRows + MixColumns fused), built
/// once per process. `TE[1..4]` are byte rotations of `TE[0]`.
fn te_tables() -> &'static [[u32; 256]; 4] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut te = [[0u32; 256]; 4];
        for x in 0..256 {
            let s = SBOX[x] as u32;
            let s2 = xtime(SBOX[x]) as u32;
            let s3 = s2 ^ s;
            let t0 = (s2 << 24) | (s << 16) | (s << 8) | s3;
            te[0][x] = t0;
            te[1][x] = t0.rotate_right(8);
            te[2][x] = t0.rotate_right(16);
            te[3][x] = t0.rotate_right(24);
        }
        te
    })
}

/// The concrete engine block operations dispatch to (the internal side of
/// [`CryptoBackend`]).
#[derive(Clone)]
enum Engine {
    /// T-table fast lane (state lives in `Aes::round_keys_u32`).
    Table,
    /// Portable bitsliced constant-time lane.
    Bitsliced(AesCt),
    /// AES-NI constant-time lane.
    #[cfg(target_arch = "x86_64")]
    HwAccel(AesNi),
}

/// An expanded AES key, ready to encrypt or decrypt 16-byte blocks.
///
/// Round-key material (byte, word, bitsliced-plane, and hardware-schedule
/// forms) is volatilely zeroized when the value is dropped.
#[derive(Clone)]
pub struct Aes {
    /// Expanded round keys, 4 words per round plus the initial whitening key.
    round_keys: Vec<[u8; 16]>,
    /// Round keys as big-endian column words, for the T-table fast path.
    round_keys_u32: Vec<[u32; 4]>,
    /// The engine block operations run through.
    engine: Engine,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expands a key of the given size under the default profile
    /// ([`CryptoProfile::ConstantTime`]).
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` does not match `size` (16 bytes for
    /// [`KeySize::Aes128`], 32 for [`KeySize::Aes256`]).
    pub fn new(key: &[u8], size: KeySize) -> Aes {
        Aes::with_profile(key, size, CryptoProfile::default())
    }

    /// Expands a key for the given lane. [`CryptoProfile::ConstantTime`]
    /// resolves through [`crate::cpu::constant_time_backend`] to the
    /// AES-NI engine when the CPU has it, else the bitsliced engine.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` does not match `size`.
    pub fn with_profile(key: &[u8], size: KeySize, profile: CryptoProfile) -> Aes {
        Aes::with_backend(key, size, crate::cpu::backend_for(profile))
    }

    /// Expands a key for one *specific* engine, bypassing CPU dispatch.
    /// Normal callers want [`Aes::with_profile`]; this exists so the
    /// differential test suites and the `micro_ct` bench can pin each
    /// lane regardless of host CPU or the force-portable override.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` does not match `size`, or if
    /// [`CryptoBackend::HwAccel`] is requested on a CPU without
    /// AES-NI/PCLMULQDQ (check [`crate::cpu::hw_accel_available`] first).
    pub fn with_backend(key: &[u8], size: KeySize, backend: CryptoBackend) -> Aes {
        assert_eq!(key.len(), size.nk() * 4, "AES key length mismatch");
        #[cfg(target_arch = "x86_64")]
        if backend == CryptoBackend::HwAccel {
            // The hardware schedule never runs key bytes through a memory
            // table, and is much cheaper than the algebraic-S-box portable
            // schedule; mirror its output into the byte/word forms used by
            // the reference path and the wipe tests.
            let ni = AesNi::new(key, size);
            let nr = size.nr();
            let mut round_keys = Vec::with_capacity(nr + 1);
            let mut round_keys_u32 = Vec::with_capacity(nr + 1);
            for rk in ni.round_keys() {
                let mut rk32 = [0u32; 4];
                for c in 0..4 {
                    rk32[c] = u32::from_be_bytes(rk[c * 4..c * 4 + 4].try_into().unwrap());
                }
                round_keys.push(*rk);
                round_keys_u32.push(rk32);
            }
            return Aes { round_keys, round_keys_u32, engine: Engine::HwAccel(ni), rounds: nr };
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert!(
            backend != CryptoBackend::HwAccel,
            "hardware crypto lane is x86_64-only; use CryptoBackend::Bitsliced"
        );
        let sub: fn(u8) -> u8 = match backend {
            CryptoBackend::Table => |b| SBOX[b as usize],
            _ => aes_ct::sbox_ct,
        };
        let nk = size.nk();
        let nr = size.nr();
        let total_words = 4 * (nr + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sub(*b);
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = sub(*b);
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = Vec::with_capacity(nr + 1);
        let mut round_keys_u32 = Vec::with_capacity(nr + 1);
        for r in 0..=nr {
            let mut rk = [0u8; 16];
            let mut rk32 = [0u32; 4];
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
                rk32[c] = u32::from_be_bytes(w[r * 4 + c]);
            }
            round_keys.push(rk);
            round_keys_u32.push(rk32);
        }
        crate::ct::zeroize(w.as_flattened_mut());
        let engine = match backend {
            CryptoBackend::Table => Engine::Table,
            _ => Engine::Bitsliced(AesCt::from_round_keys(&round_keys)),
        };
        Aes { round_keys, round_keys_u32, engine, rounds: nr }
    }

    /// The profile this key was expanded for.
    pub fn profile(&self) -> CryptoProfile {
        match self.engine {
            Engine::Table => CryptoProfile::Fast,
            _ => CryptoProfile::ConstantTime,
        }
    }

    /// The concrete engine this key dispatches to.
    pub fn backend(&self) -> CryptoBackend {
        match self.engine {
            Engine::Table => CryptoBackend::Table,
            Engine::Bitsliced(_) => CryptoBackend::Bitsliced,
            #[cfg(target_arch = "x86_64")]
            Engine::HwAccel(_) => CryptoBackend::HwAccel,
        }
    }

    /// Expands a 16-byte AES-128 key.
    ///
    /// # Examples
    ///
    /// ```
    /// let aes = nexus_crypto::aes::Aes::new_128(&[0u8; 16]);
    /// let mut block = [0u8; 16];
    /// aes.encrypt_block(&mut block);
    /// ```
    pub fn new_128(key: &[u8; 16]) -> Aes {
        Aes::new(key, KeySize::Aes128)
    }

    /// Expands a 32-byte AES-256 key.
    pub fn new_256(key: &[u8; 32]) -> Aes {
        Aes::new(key, KeySize::Aes256)
    }

    /// Encrypts one 16-byte block in place.
    ///
    /// The bitsliced lane runs the block through the 8-wide engine with
    /// seven idle lanes rather than keeping a scalar path with different
    /// timing behaviour; the AES-NI lane has a true single-block pipeline.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        match &self.engine {
            Engine::Table => {}
            Engine::Bitsliced(ct) => {
                let mut batch = [[0u8; 16]; 8];
                batch[0] = *block;
                ct.encrypt_blocks8(&mut batch);
                *block = batch[0];
                return;
            }
            #[cfg(target_arch = "x86_64")]
            Engine::HwAccel(ni) => {
                ni.encrypt_block(block);
                return;
            }
        }
        let te = te_tables();
        let rk = &self.round_keys_u32;
        let mut c = load_state(block, &rk[0]);
        for k in &rk[1..self.rounds] {
            c = round(te, &c, k);
        }
        store_state(block, &final_round(&c, &rk[self.rounds]));
    }

    /// Encrypts eight 16-byte blocks in place.
    ///
    /// The round loop iterates over the eight *independent* states inside
    /// each round, so the sixteen T-table loads of one state overlap with
    /// those of the next seven — the same result as eight
    /// [`Aes::encrypt_block`] calls, with much better instruction-level
    /// parallelism. This is what makes the batched GCM CTR keystream
    /// (`crate::gcm`) cheaper per byte.
    pub fn encrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        match &self.engine {
            Engine::Table => {}
            Engine::Bitsliced(ct) => {
                ct.encrypt_blocks8(blocks);
                return;
            }
            #[cfg(target_arch = "x86_64")]
            Engine::HwAccel(ni) => {
                ni.encrypt_blocks8(blocks);
                return;
            }
        }
        let te = te_tables();
        let rk = &self.round_keys_u32;
        let mut states = [[0u32; 4]; 8];
        for (state, block) in states.iter_mut().zip(blocks.iter()) {
            *state = load_state(block, &rk[0]);
        }
        for k in &rk[1..self.rounds] {
            for state in states.iter_mut() {
                *state = round(te, state, k);
            }
        }
        let last = &rk[self.rounds];
        for (state, block) in states.iter().zip(blocks.iter_mut()) {
            store_state(block, &final_round(state, last));
        }
    }

    /// Reference (table-free) encryption, kept for differential testing.
    #[doc(hidden)]
    pub fn encrypt_block_reference(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        match &self.engine {
            Engine::Table => {}
            Engine::Bitsliced(ct) => {
                let mut batch = [[0u8; 16]; 8];
                batch[0] = *block;
                ct.decrypt_blocks8(&mut batch);
                *block = batch[0];
                return;
            }
            #[cfg(target_arch = "x86_64")]
            Engine::HwAccel(ni) => {
                ni.decrypt_block(block);
                return;
            }
        }
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Decrypts eight 16-byte blocks in place — the inverse of
    /// [`Aes::encrypt_blocks8`]. Native batch on the bitsliced and AES-NI
    /// engines; the table lane decrypts serially (its byte-oriented
    /// inverse cipher gains nothing from interleaving).
    pub fn decrypt_blocks8(&self, blocks: &mut [[u8; 16]; 8]) {
        match &self.engine {
            Engine::Table => {
                for block in blocks.iter_mut() {
                    self.decrypt_block(block);
                }
            }
            Engine::Bitsliced(ct) => ct.decrypt_blocks8(blocks),
            #[cfg(target_arch = "x86_64")]
            Engine::HwAccel(ni) => ni.decrypt_blocks8(blocks),
        }
    }

    /// Encrypts one block while recording every data-dependent table access
    /// as `(table_id, index)` pairs — T-tables are ids 0..=3, the final
    /// round's S-box is id 4. The constant-time lanes (bitsliced and
    /// AES-NI alike) perform no such access, so their traces stay empty.
    ///
    /// This feeds the `nexus-testkit` timing-leak harness's deterministic
    /// cache model; the ciphertext is always identical to
    /// [`Aes::encrypt_block`].
    #[doc(hidden)]
    pub fn encrypt_block_trace(&self, block: &mut [u8; 16], trace: &mut Vec<(u8, u16)>) {
        if !matches!(self.engine, Engine::Table) {
            self.encrypt_block(block);
            return;
        }
        let te = te_tables();
        let rk = &self.round_keys_u32;
        let mut c = load_state(block, &rk[0]);
        for k in &rk[1..self.rounds] {
            c = round_traced(te, &c, k, trace);
        }
        store_state(block, &final_round_traced(&c, &rk[self.rounds], trace));
    }

    /// Volatile best-effort clear of all round-key forms (also invoked by
    /// `Drop`; kept separate so tests can observe the cleared state).
    fn wipe(&mut self) {
        for rk in self.round_keys.iter_mut() {
            crate::ct::zeroize(rk);
        }
        for rk in self.round_keys_u32.iter_mut() {
            crate::ct::zeroize_u32(rk);
        }
        match &mut self.engine {
            Engine::Table => {}
            Engine::Bitsliced(ct) => ct.wipe(),
            #[cfg(target_arch = "x86_64")]
            Engine::HwAccel(ni) => ni.wipe(),
        }
    }
}

impl Drop for Aes {
    fn drop(&mut self) {
        self.wipe();
    }
}

impl crate::ct::ZeroizeOnDrop for Aes {}

/// Loads a block into big-endian column words, applying the whitening key.
#[inline(always)]
fn load_state(block: &[u8; 16], rk0: &[u32; 4]) -> [u32; 4] {
    [
        u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ rk0[0],
        u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ rk0[1],
        u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ rk0[2],
        u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ rk0[3],
    ]
}

/// Stores column words back into block bytes.
#[inline(always)]
fn store_state(block: &mut [u8; 16], words: &[u32; 4]) {
    for (i, word) in words.iter().enumerate() {
        block[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
}

/// One full middle round: SubBytes + ShiftRows + MixColumns + AddRoundKey
/// fused through the T-tables.
#[inline(always)]
fn round(te: &[[u32; 256]; 4], c: &[u32; 4], k: &[u32; 4]) -> [u32; 4] {
    [
        te[0][(c[0] >> 24) as usize]
            ^ te[1][((c[1] >> 16) & 0xff) as usize]
            ^ te[2][((c[2] >> 8) & 0xff) as usize]
            ^ te[3][(c[3] & 0xff) as usize]
            ^ k[0],
        te[0][(c[1] >> 24) as usize]
            ^ te[1][((c[2] >> 16) & 0xff) as usize]
            ^ te[2][((c[3] >> 8) & 0xff) as usize]
            ^ te[3][(c[0] & 0xff) as usize]
            ^ k[1],
        te[0][(c[2] >> 24) as usize]
            ^ te[1][((c[3] >> 16) & 0xff) as usize]
            ^ te[2][((c[0] >> 8) & 0xff) as usize]
            ^ te[3][(c[1] & 0xff) as usize]
            ^ k[2],
        te[0][(c[3] >> 24) as usize]
            ^ te[1][((c[0] >> 16) & 0xff) as usize]
            ^ te[2][((c[1] >> 8) & 0xff) as usize]
            ^ te[3][(c[2] & 0xff) as usize]
            ^ k[3],
    ]
}

/// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
#[inline(always)]
fn final_round(c: &[u32; 4], k: &[u32; 4]) -> [u32; 4] {
    let s = |w: u32, shift: u32| -> u32 { SBOX[((w >> shift) & 0xff) as usize] as u32 };
    [
        ((s(c[0], 24) << 24) | (s(c[1], 16) << 16) | (s(c[2], 8) << 8) | s(c[3], 0)) ^ k[0],
        ((s(c[1], 24) << 24) | (s(c[2], 16) << 16) | (s(c[3], 8) << 8) | s(c[0], 0)) ^ k[1],
        ((s(c[2], 24) << 24) | (s(c[3], 16) << 16) | (s(c[0], 8) << 8) | s(c[1], 0)) ^ k[2],
        ((s(c[3], 24) << 24) | (s(c[0], 16) << 16) | (s(c[1], 8) << 8) | s(c[2], 0)) ^ k[3],
    ]
}

/// [`round`] with every T-table access appended to `trace`; identical
/// output, used only by [`Aes::encrypt_block_trace`].
fn round_traced(
    te: &[[u32; 256]; 4],
    c: &[u32; 4],
    k: &[u32; 4],
    trace: &mut Vec<(u8, u16)>,
) -> [u32; 4] {
    let mut out = [0u32; 4];
    for i in 0..4 {
        let idx = [
            (c[i] >> 24) & 0xff,
            (c[(i + 1) % 4] >> 16) & 0xff,
            (c[(i + 2) % 4] >> 8) & 0xff,
            c[(i + 3) % 4] & 0xff,
        ];
        let mut w = k[i];
        for (t, ix) in idx.iter().enumerate() {
            trace.push((t as u8, *ix as u16));
            w ^= te[t][*ix as usize];
        }
        out[i] = w;
    }
    out
}

/// [`final_round`] with every S-box access appended to `trace` (table id 4).
fn final_round_traced(c: &[u32; 4], k: &[u32; 4], trace: &mut Vec<(u8, u16)>) -> [u32; 4] {
    let mut out = [0u32; 4];
    for i in 0..4 {
        let idx = [
            (c[i] >> 24) & 0xff,
            (c[(i + 1) % 4] >> 16) & 0xff,
            (c[(i + 2) % 4] >> 8) & 0xff,
            c[(i + 3) % 4] & 0xff,
        ];
        let mut w = 0u32;
        for (pos, ix) in idx.iter().enumerate() {
            trace.push((4, *ix as u16));
            w |= (SBOX[*ix as usize] as u32) << (24 - 8 * pos as u32);
        }
        out[i] = w ^ k[i];
    }
    out
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
#[inline]
pub(crate) fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
pub(crate) fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
pub(crate) fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
pub(crate) fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] =
            gf_mul(col[0], 0x0e) ^ gf_mul(col[1], 0x0b) ^ gf_mul(col[2], 0x0d) ^ gf_mul(col[3], 0x09);
        state[4 * c + 1] =
            gf_mul(col[0], 0x09) ^ gf_mul(col[1], 0x0e) ^ gf_mul(col[2], 0x0b) ^ gf_mul(col[3], 0x0d);
        state[4 * c + 2] =
            gf_mul(col[0], 0x0d) ^ gf_mul(col[1], 0x09) ^ gf_mul(col[2], 0x0e) ^ gf_mul(col[3], 0x0b);
        state[4 * c + 3] =
            gf_mul(col[0], 0x0b) ^ gf_mul(col[1], 0x0d) ^ gf_mul(col[2], 0x09) ^ gf_mul(col[3], 0x0e);
    }
}

/// Byte-level round transforms re-exported for the bitsliced lane's
/// differential tests.
#[cfg(test)]
pub(crate) mod reference {
    pub(crate) use super::{inv_mix_columns, inv_shift_rows, mix_columns, shift_rows};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::unhex;

    #[test]
    fn fips197_aes128_vector() {
        // FIPS 197 Appendix B.
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = unhex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let aes = Aes::new_128(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("3925841d02dc09fbdc118597196a0b32"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("3243f6a8885a308d313198a2e0370734"));
    }

    #[test]
    fn fips197_aes128_appendix_c1() {
        let key: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_128(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_aes256_appendix_c3() {
        let key: [u8; 32] =
            unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_256(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_random_keys() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(7);
        for _ in 0..50 {
            let key: [u8; 32] = rng.bytes();
            let aes = Aes::new_256(&key);
            let plain: [u8; 16] = rng.bytes();
            let mut block = plain;
            aes.encrypt_block(&mut block);
            assert_ne!(block, plain);
            aes.decrypt_block(&mut block);
            assert_eq!(block, plain);
        }
    }

    #[test]
    #[should_panic(expected = "AES key length mismatch")]
    fn wrong_key_length_panics() {
        let _ = Aes::new(&[0u8; 17], KeySize::Aes128);
    }

    #[test]
    fn ttable_matches_reference_implementation() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(99);
        for _ in 0..200 {
            let key16: [u8; 16] = rng.bytes();
            let key32: [u8; 32] = rng.bytes();
            let plain: [u8; 16] = rng.bytes();
            for aes in [Aes::new_128(&key16), Aes::new_256(&key32)] {
                let mut fast = plain;
                let mut slow = plain;
                aes.encrypt_block(&mut fast);
                aes.encrypt_block_reference(&mut slow);
                assert_eq!(fast, slow);
            }
        }
    }

    #[test]
    fn blocks8_matches_single_block_path() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(2024);
        for _ in 0..50 {
            let key16: [u8; 16] = rng.bytes();
            let key32: [u8; 32] = rng.bytes();
            for aes in [Aes::new_128(&key16), Aes::new_256(&key32)] {
                let mut batch = [[0u8; 16]; 8];
                for b in batch.iter_mut() {
                    *b = rng.bytes();
                }
                let mut singles = batch;
                aes.encrypt_blocks8(&mut batch);
                for b in singles.iter_mut() {
                    aes.encrypt_block(b);
                }
                assert_eq!(batch, singles);
            }
        }
    }

    #[test]
    fn fips197_vectors_pass_under_constant_time_profile() {
        let cases: [(&str, &str, &str); 3] = [
            (
                "2b7e151628aed2a6abf7158809cf4f3c",
                "3243f6a8885a308d313198a2e0370734",
                "3925841d02dc09fbdc118597196a0b32",
            ),
            (
                "000102030405060708090a0b0c0d0e0f",
                "00112233445566778899aabbccddeeff",
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                "00112233445566778899aabbccddeeff",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ];
        for (key_hex, plain_hex, cipher_hex) in cases {
            let key = unhex(key_hex);
            let size = if key.len() == 16 { KeySize::Aes128 } else { KeySize::Aes256 };
            let aes = Aes::with_profile(&key, size, CryptoProfile::ConstantTime);
            assert_eq!(aes.profile(), CryptoProfile::ConstantTime);
            let mut block: [u8; 16] = unhex(plain_hex).try_into().unwrap();
            aes.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), unhex(cipher_hex));
            aes.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), unhex(plain_hex));
        }
    }

    #[test]
    fn ct_lane_matches_fast_lane() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(515);
        for _ in 0..50 {
            let key16: [u8; 16] = rng.bytes();
            let key32: [u8; 32] = rng.bytes();
            for (key, size) in [(&key16[..], KeySize::Aes128), (&key32[..], KeySize::Aes256)] {
                let fast = Aes::with_profile(key, size, CryptoProfile::Fast);
                let hard = Aes::with_profile(key, size, CryptoProfile::ConstantTime);
                let mut batch = [[0u8; 16]; 8];
                for b in batch.iter_mut() {
                    *b = rng.bytes();
                }
                let mut fast_batch = batch;
                let mut hard_batch = batch;
                fast.encrypt_blocks8(&mut fast_batch);
                hard.encrypt_blocks8(&mut hard_batch);
                assert_eq!(fast_batch, hard_batch);
                let mut single = batch[0];
                hard.encrypt_block(&mut single);
                assert_eq!(single, fast_batch[0]);
                hard.decrypt_block(&mut single);
                assert_eq!(single, batch[0]);
            }
        }
    }

    #[test]
    fn traced_encrypt_matches_and_ct_trace_is_empty() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(81);
        for _ in 0..20 {
            let key: [u8; 16] = rng.bytes();
            let plain: [u8; 16] = rng.bytes();
            let fast = Aes::with_profile(&key, KeySize::Aes128, CryptoProfile::Fast);
            let mut expect = plain;
            fast.encrypt_block(&mut expect);
            let mut traced = plain;
            let mut trace = Vec::new();
            fast.encrypt_block_trace(&mut traced, &mut trace);
            assert_eq!(traced, expect);
            // 16 T-table loads per middle round + 16 S-box loads at the end.
            assert_eq!(trace.len(), 16 * 10);
            // Both constant-time engines leave the trace empty.
            for backend in ct_backends() {
                let hard = Aes::with_backend(&key, KeySize::Aes128, backend);
                let mut ct_block = plain;
                let mut ct_trace = Vec::new();
                hard.encrypt_block_trace(&mut ct_block, &mut ct_trace);
                assert_eq!(ct_block, expect);
                assert!(ct_trace.is_empty(), "{backend:?} lane recorded table accesses");
            }
        }
    }

    /// The constant-time backends testable on this host: always the
    /// bitsliced engine, plus AES-NI where the CPU has it.
    fn ct_backends() -> Vec<CryptoBackend> {
        let mut backends = vec![CryptoBackend::Bitsliced];
        if crate::cpu::hw_accel_available() {
            backends.push(CryptoBackend::HwAccel);
        }
        backends
    }

    #[test]
    fn default_profile_is_constant_time() {
        let aes = Aes::new_128(&[0u8; 16]);
        assert_eq!(aes.profile(), CryptoProfile::ConstantTime);
        assert_ne!(aes.backend(), CryptoBackend::Table);
    }

    #[test]
    fn hw_schedule_matches_portable_schedule() {
        if !crate::cpu::hw_accel_available() {
            return;
        }
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0x5c_4ed);
        for _ in 0..20 {
            let key16: [u8; 16] = rng.bytes();
            let key32: [u8; 32] = rng.bytes();
            for (key, size) in [(&key16[..], KeySize::Aes128), (&key32[..], KeySize::Aes256)] {
                let hw = Aes::with_backend(key, size, CryptoBackend::HwAccel);
                let sw = Aes::with_backend(key, size, CryptoBackend::Table);
                // The AESKEYGENASSIST schedule must produce the exact
                // FIPS 197 expansion in every mirrored form.
                assert_eq!(hw.round_keys, sw.round_keys);
                assert_eq!(hw.round_keys_u32, sw.round_keys_u32);
            }
        }
    }

    #[test]
    fn all_backends_agree_on_every_operation() {
        use crate::rng::{SecureRandom, SeededRandom};
        let mut rng = SeededRandom::new(0x3_1a2e5);
        for _ in 0..30 {
            let key: [u8; 32] = rng.bytes();
            let reference = Aes::with_backend(&key, KeySize::Aes256, CryptoBackend::Table);
            let mut batch = [[0u8; 16]; 8];
            for b in batch.iter_mut() {
                *b = rng.bytes();
            }
            let mut expect = batch;
            reference.encrypt_blocks8(&mut expect);
            for backend in ct_backends() {
                let aes = Aes::with_backend(&key, KeySize::Aes256, backend);
                assert_eq!(aes.backend(), backend);
                let mut enc = batch;
                aes.encrypt_blocks8(&mut enc);
                assert_eq!(enc, expect, "{backend:?} encrypt_blocks8");
                aes.decrypt_blocks8(&mut enc);
                assert_eq!(enc, batch, "{backend:?} decrypt_blocks8");
                let mut single = batch[3];
                aes.encrypt_block(&mut single);
                assert_eq!(single, expect[3], "{backend:?} encrypt_block");
                aes.decrypt_block(&mut single);
                assert_eq!(single, batch[3], "{backend:?} decrypt_block");
                let mut reference_path = batch[5];
                aes.encrypt_block_reference(&mut reference_path);
                assert_eq!(reference_path, expect[5], "{backend:?} reference path");
            }
        }
    }

    #[test]
    fn wipe_clears_all_round_key_forms() {
        let mut backends = vec![CryptoBackend::Table];
        backends.extend(ct_backends());
        for backend in backends {
            let mut aes = Aes::with_backend(&[0x5au8; 16], KeySize::Aes128, backend);
            aes.wipe();
            assert!(aes.round_keys.iter().all(|rk| rk.iter().all(|&b| b == 0)));
            assert!(aes.round_keys_u32.iter().all(|rk| rk.iter().all(|&w| w == 0)));
        }
    }

    #[test]
    fn gf_mul_matches_xtime() {
        for b in 0u8..=255 {
            assert_eq!(gf_mul(b, 2), xtime(b));
            assert_eq!(gf_mul(b, 1), b);
            assert_eq!(gf_mul(b, 3), xtime(b) ^ b);
        }
    }
}
