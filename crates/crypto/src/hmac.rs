//! HMAC (RFC 2104) instantiated with SHA-256 and SHA-512.
//!
//! # Examples
//!
//! ```
//! use nexus_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

use crate::sha2::{Sha256, Sha512};

/// Computes HMAC-SHA-256 over `msg` with `key`.
///
/// Keys longer than the 64-byte block size are hashed first, per RFC 2104.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad).update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest);
    let tag = outer.finalize();
    // The padded key and both derived pads are key material; clear them
    // before the stack frames are reused.
    crate::ct::zeroize(&mut k);
    crate::ct::zeroize(&mut ipad);
    crate::ct::zeroize(&mut opad);
    tag
}

/// Computes HMAC-SHA-512 over `msg` with `key`.
pub fn hmac_sha512(key: &[u8], msg: &[u8]) -> [u8; 64] {
    let mut k = [0u8; 128];
    if key.len() > 128 {
        k[..64].copy_from_slice(&Sha512::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 128];
    let mut opad = [0x5cu8; 128];
    for i in 0..128 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha512::new();
    inner.update(&ipad).update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha512::new();
    outer.update(&opad).update(&inner_digest);
    let tag = outer.finalize();
    crate::ct::zeroize(&mut k);
    crate::ct::zeroize(&mut ipad);
    crate::ct::zeroize(&mut opad);
    tag
}

/// HKDF (RFC 5869) with SHA-256: extract step.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF (RFC 5869) with SHA-256: expand step.
///
/// # Panics
///
/// Panics if `out_len > 255 * 32` as required by the RFC.
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "HKDF output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        let take = (out_len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        counter = counter.wrapping_add(1);
    }
    out
}

/// Convenience: full HKDF extract-then-expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{hex, unhex};

    #[test]
    fn rfc4231_case1_sha256() {
        let key = vec![0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2_sha256() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_sha256() {
        let key = vec![0xaa; 20];
        let msg = vec![0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key_sha256() {
        let key = vec![0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case1_sha512() {
        let key = vec![0x0b; 20];
        let tag = hmac_sha512(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc5869_case1_hkdf() {
        let ikm = vec![0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case2_hkdf_long() {
        let ikm = unhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f\
             202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f\
             404142434445464748494a4b4c4d4e4f",
        );
        let salt = unhex(
            "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f\
             808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f\
             a0a1a2a3a4a5a6a7a8a9aaabacadaeaf",
        );
        let info = unhex(
            "b0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecf\
             d0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeef\
             f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff",
        );
        let okm = hkdf(&salt, &ikm, &info, 82);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case3_zero_salt() {
        let ikm = vec![0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    #[should_panic(expected = "HKDF output too long")]
    fn hkdf_output_cap() {
        let _ = hkdf_expand(&[0u8; 32], b"", 255 * 32 + 1);
    }
}
