//! X25519 Diffie–Hellman (RFC 7748).
//!
//! NEXUS uses X25519 for the enclave-to-enclave rootkey exchange protocol
//! (paper §IV-B1): each enclave holds an ECDH keypair whose public half is
//! bound into an SGX quote, and the shared secret encrypts the rootkey.
//!
//! # Examples
//!
//! ```
//! use nexus_crypto::x25519::{x25519, X25519_BASEPOINT};
//!
//! let alice_secret = [0x11u8; 32];
//! let bob_secret = [0x22u8; 32];
//! let alice_public = x25519(&alice_secret, &X25519_BASEPOINT);
//! let bob_public = x25519(&bob_secret, &X25519_BASEPOINT);
//! assert_eq!(
//!     x25519(&alice_secret, &bob_public),
//!     x25519(&bob_secret, &alice_public),
//! );
//! ```

use crate::field25519::Fe;

/// The canonical base point (u = 9).
pub const X25519_BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Clamps a 32-byte scalar per RFC 7748 §5.
pub fn clamp_scalar(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// The X25519 function: scalar multiplication on the Montgomery curve.
///
/// `scalar` is clamped internally; `u` is a little-endian u-coordinate whose
/// top bit is ignored, both per RFC 7748.
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp_scalar(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let a24 = Fe::from_u64(121665);
    let mut swap = false;

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1 == 1;
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&a24.mul(&e)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(&z2.invert()).to_bytes()
}

/// Derives the public key for a (clamped) private scalar.
pub fn x25519_public_key(secret: &[u8; 32]) -> [u8; 32] {
    x25519(secret, &X25519_BASEPOINT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{hex, unhex};

    #[test]
    fn rfc7748_vector_1() {
        let scalar: [u8; 32] =
            unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
                .try_into()
                .unwrap();
        let u: [u8; 32] =
            unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
                .try_into()
                .unwrap();
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar: [u8; 32] =
            unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
                .try_into()
                .unwrap();
        let u: [u8; 32] =
            unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
                .try_into()
                .unwrap();
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_diffie_hellman() {
        let alice_priv: [u8; 32] =
            unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
                .try_into()
                .unwrap();
        let bob_priv: [u8; 32] =
            unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")
                .try_into()
                .unwrap();
        let alice_pub = x25519_public_key(&alice_priv);
        let bob_pub = x25519_public_key(&bob_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = x25519(&alice_priv, &bob_pub);
        let shared_b = x25519(&bob_priv, &alice_pub);
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn clamping_is_applied() {
        // Two scalars differing only in clamped bits produce the same output.
        let mut a = [0x42u8; 32];
        let mut b = a;
        a[0] |= 0x07;
        b[0] &= !0x07;
        assert_eq!(x25519_public_key(&a), x25519_public_key(&b));
    }

    #[test]
    fn shared_secret_changes_with_key() {
        let a = x25519(&[1u8; 32], &X25519_BASEPOINT);
        let b = x25519(&[2u8; 32], &X25519_BASEPOINT);
        assert_ne!(a, b);
    }
}
