//! A hierarchical timer wheel over virtual (simulated) time.
//!
//! The executor's reactor: every parked future registers a `(deadline,
//! waker)` pair here, and the driver fires the earliest group whenever the
//! run queue quiesces, advancing the shared [`SimClock`] to that deadline.
//! Firing order is the simulation's event order, so it is exact — entries
//! come out sorted by `(deadline, seq)` where `seq` is registration order,
//! regardless of which slot granularity they were bucketed at.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots each. A slot at level `l`
//! spans `2^(GRAN_BITS + 6l)` ns (level 0 ≈ 1 µs), so the wheel resolves
//! deadlines ~19 hours out; anything beyond parks in an overflow list that
//! re-buckets as time advances. Each level keeps a `u64` occupancy bitmap
//! and a per-slot minimum deadline, so `next_deadline` scans set bits only
//! — no entry is ever inspected — and `advance` drains exactly the slots
//! the interval crossed, cascading longer-range entries down to finer
//! levels as their remaining delta shrinks.
//!
//! The wheel is not thread-safe by itself; the executor guards it with a
//! mutex and is the only writer.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::task::Waker;

/// log2 of level-0 tick width in nanoseconds (1024 ns ≈ 1 µs).
const GRAN_BITS: u32 = 10;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// Deadlines at least this far past `current` go to the overflow list.
const HORIZON: u64 = 1 << (GRAN_BITS + SLOT_BITS * LEVELS as u32);

/// One registered wakeup.
pub struct TimerEntry {
    /// Absolute virtual deadline, nanoseconds since clock start.
    pub deadline: u64,
    /// Registration order; ties on `deadline` fire in `seq` order.
    pub seq: u64,
    /// The task to wake.
    pub waker: Waker,
    /// Set by the driver before waking, so the sleeping future observes
    /// completion even when the shared clock is ahead of its deadline.
    pub fired: Arc<AtomicBool>,
}

#[derive(Default)]
struct Slot {
    entries: Vec<TimerEntry>,
    /// Minimum deadline among `entries`; meaningless when empty.
    min: u64,
}

struct Level {
    /// Bit `i` set iff `slots[i]` is non-empty.
    occupied: u64,
    slots: Vec<Slot>,
}

/// The wheel. `current` only moves forward; every stored entry has
/// `deadline > current` (already-due registrations go straight to `due`).
pub struct TimerWheel {
    levels: Vec<Level>,
    overflow: Vec<TimerEntry>,
    /// Entries registered at or before `current` (a `schedule_at` whose
    /// lane already ran ahead of the shared clock); fire in the next batch.
    due: Vec<TimerEntry>,
    current: u64,
    next_seq: u64,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl TimerWheel {
    /// An empty wheel at virtual time zero.
    pub fn new() -> TimerWheel {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| Level {
                    occupied: 0,
                    slots: (0..SLOTS).map(|_| Slot::default()).collect(),
                })
                .collect(),
            overflow: Vec::new(),
            due: Vec::new(),
            current: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// Pending entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no wakeup is registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's notion of "now" (nanoseconds); updated by `advance`.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Registers a wakeup and returns its sequence number.
    pub fn insert(&mut self, deadline: u64, waker: Waker, fired: Arc<AtomicBool>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(TimerEntry { deadline, seq, waker, fired });
        seq
    }

    fn place(&mut self, e: TimerEntry) {
        if e.deadline <= self.current {
            self.due.push(e);
            return;
        }
        let delta = e.deadline - self.current;
        if delta >= HORIZON {
            self.overflow.push(e);
            return;
        }
        // The level whose slot width matches the delta's magnitude: finer
        // levels could not hold it (their 64 slots span less than delta).
        let bits = 64 - delta.leading_zeros(); // >= 1 since delta > 0
        let level = (bits.saturating_sub(GRAN_BITS + 1) / SLOT_BITS).min(LEVELS as u32 - 1);
        let idx = ((e.deadline >> (GRAN_BITS + SLOT_BITS * level)) & (SLOTS as u64 - 1)) as usize;
        let slot = &mut self.levels[level as usize].slots[idx];
        if slot.entries.is_empty() || e.deadline < slot.min {
            slot.min = e.deadline;
        }
        slot.entries.push(e);
        self.levels[level as usize].occupied |= 1 << idx;
    }

    /// The earliest registered deadline, if any.
    ///
    /// Scans occupancy bitmaps and per-slot minima only; the slot-minimum
    /// over every non-empty slot is exactly the entry-minimum because each
    /// entry contributes to its own slot's minimum.
    pub fn next_deadline(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut consider = |d: u64| {
            if best.map_or(true, |b| d < b) {
                best = Some(d);
            }
        };
        for e in &self.due {
            consider(e.deadline);
        }
        for level in &self.levels {
            let mut bits = level.occupied;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                consider(level.slots[i].min);
            }
        }
        for e in &self.overflow {
            consider(e.deadline);
        }
        best
    }

    /// Moves the wheel to `to` and returns every entry with
    /// `deadline <= to`, sorted by `(deadline, seq)`.
    ///
    /// Drains exactly the slots the interval `(current, to]` crossed at
    /// each level; drained entries that are not yet due re-bucket at a
    /// finer level (the cascade), as do overflow entries that fell within
    /// the horizon.
    pub fn advance(&mut self, to: u64) -> Vec<TimerEntry> {
        let to = to.max(self.current);
        let from = self.current;
        let mut fired = std::mem::take(&mut self.due);
        let mut reinsert: Vec<TimerEntry> = Vec::new();
        for l in 0..LEVELS {
            if self.levels[l].occupied == 0 {
                continue;
            }
            let shift = GRAN_BITS + SLOT_BITS * l as u32;
            let s0 = from >> shift;
            let s1 = to >> shift;
            let drain_all = s1 - s0 >= SLOTS as u64;
            let lo = (s0 & (SLOTS as u64 - 1)) as usize;
            let hi = (s1 & (SLOTS as u64 - 1)) as usize;
            let mut bits = self.levels[l].occupied;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // Slot i maps to the one absolute slot ≡ i (mod 64) in
                // [s0, s1]; outside that circular window nothing is due.
                let in_window = drain_all
                    || if lo <= hi { i >= lo && i <= hi } else { i >= lo || i <= hi };
                if !in_window {
                    continue;
                }
                let entries = std::mem::take(&mut self.levels[l].slots[i].entries);
                self.levels[l].occupied &= !(1u64 << i);
                for e in entries {
                    if e.deadline <= to {
                        fired.push(e);
                    } else {
                        reinsert.push(e);
                    }
                }
            }
        }
        self.current = to;
        if !self.overflow.is_empty() {
            let overflow = std::mem::take(&mut self.overflow);
            for e in overflow {
                if e.deadline <= to {
                    fired.push(e);
                } else if e.deadline - to < HORIZON {
                    reinsert.push(e);
                } else {
                    self.overflow.push(e);
                }
            }
        }
        for e in reinsert {
            self.place(e);
        }
        fired.sort_by_key(|e| (e.deadline, e.seq));
        self.len -= fired.len();
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::Ordering;
    use std::task::{RawWaker, RawWakerVTable};

    /// A waker that does nothing — these tests inspect entries directly.
    fn noop_waker() -> Waker {
        fn clone(_: *const ()) -> RawWaker {
            RawWaker::new(std::ptr::null(), &VTABLE)
        }
        fn noop(_: *const ()) {}
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
        unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
    }

    fn insert(w: &mut TimerWheel, deadline: u64) -> u64 {
        w.insert(deadline, noop_waker(), Arc::new(AtomicBool::new(false)))
    }

    fn fired_deadlines(batch: &[TimerEntry]) -> Vec<u64> {
        batch.iter().map(|e| e.deadline).collect()
    }

    #[test]
    fn fires_in_deadline_order_regardless_of_insertion_order() {
        let mut w = TimerWheel::new();
        for d in [5_000_000u64, 1_000, 3_000_000_000, 40, 777_777] {
            insert(&mut w, d);
        }
        assert_eq!(w.next_deadline(), Some(40));
        let all = w.advance(3_000_000_000);
        assert_eq!(fired_deadlines(&all), vec![40, 1_000, 777_777, 5_000_000, 3_000_000_000]);
        assert!(w.is_empty());
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let mut w = TimerWheel::new();
        let s1 = insert(&mut w, 10_000);
        let s2 = insert(&mut w, 10_000);
        let s3 = insert(&mut w, 10_000);
        let batch = w.advance(10_000);
        assert_eq!(batch.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![s1, s2, s3]);
    }

    #[test]
    fn sub_tick_deadlines_do_not_fire_early() {
        // Two deadlines inside the same 1 µs tick: advancing to the first
        // must not release the second, even though they share a slot.
        let mut w = TimerWheel::new();
        insert(&mut w, 100);
        insert(&mut w, 900);
        let first = w.advance(100);
        assert_eq!(fired_deadlines(&first), vec![100]);
        assert_eq!(w.next_deadline(), Some(900));
        let second = w.advance(900);
        assert_eq!(fired_deadlines(&second), vec![900]);
    }

    #[test]
    fn cascade_respects_exact_deadline() {
        // An entry bucketed at a coarse level (far deadline) must fire at
        // its exact deadline after cascading, not at a slot boundary.
        let mut w = TimerWheel::new();
        let far = (1 << 30) + 12_345; // ~1.07 s out, level 3 territory
        insert(&mut w, far);
        // Step toward it in coarse hops; it must never fire early.
        for t in [1 << 20, 1 << 25, 1 << 29, far - 1] {
            assert!(w.advance(t).is_empty(), "fired early at t={t}");
            assert_eq!(w.next_deadline(), Some(far));
        }
        assert_eq!(fired_deadlines(&w.advance(far)), vec![far]);
    }

    #[test]
    fn past_deadlines_park_in_due_and_fire_next_batch_in_order() {
        let mut w = TimerWheel::new();
        w.advance(1_000_000);
        // Lane ran ahead of the shared clock: registrations in the past.
        insert(&mut w, 400_000);
        insert(&mut w, 20_000);
        insert(&mut w, 1_500_000);
        assert_eq!(w.next_deadline(), Some(20_000));
        let batch = w.advance(1_000_000); // no time movement needed
        assert_eq!(fired_deadlines(&batch), vec![20_000, 400_000]);
        assert_eq!(w.next_deadline(), Some(1_500_000));
    }

    #[test]
    fn overflow_entries_survive_and_fire() {
        let mut w = TimerWheel::new();
        let beyond = HORIZON + 55_555;
        insert(&mut w, beyond);
        insert(&mut w, 1_000);
        assert_eq!(w.next_deadline(), Some(1_000));
        assert_eq!(fired_deadlines(&w.advance(2_000)), vec![1_000]);
        // Still pending, still visible.
        assert_eq!(w.next_deadline(), Some(beyond));
        assert_eq!(fired_deadlines(&w.advance(beyond)), vec![beyond]);
        assert!(w.is_empty());
    }

    #[test]
    fn fired_flag_plumbing() {
        let mut w = TimerWheel::new();
        let flag = Arc::new(AtomicBool::new(false));
        w.insert(9, noop_waker(), flag.clone());
        let batch = w.advance(9);
        assert!(Arc::ptr_eq(&batch[0].fired, &flag));
        assert!(!flag.load(Ordering::Relaxed), "the driver, not the wheel, marks firing");
    }

    #[test]
    fn matches_btree_reference_model() {
        // Property: against a sorted-set oracle, arbitrary interleavings of
        // inserts and advances agree on next_deadline and on the exact
        // (deadline, seq) firing sequence.
        nexus_testkit::Runner::new("wheel_vs_btree")
            .cases(60)
            .run(
                |g| {
                    g.vec(1, 40, |g| {
                        let advance = g.bool() && g.bool(); // 25% advances
                        let far = g.bool() && g.bool() && g.bool();
                        let t = if far {
                            g.u64_below(HORIZON * 2)
                        } else {
                            g.u64_below(1 << 34)
                        };
                        (advance, t)
                    })
                },
                |script| nexus_testkit::shrink::ops(script),
                |script| {
                    let mut w = TimerWheel::new();
                    let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
                    let mut now = 0u64;
                    for &(advance, t) in script {
                        if advance {
                            let to = now.max(t.min(1 << 35));
                            let fired: Vec<(u64, u64)> =
                                w.advance(to).iter().map(|e| (e.deadline, e.seq)).collect();
                            let expect: Vec<(u64, u64)> = {
                                let due: Vec<_> = model
                                    .iter()
                                    .take_while(|(d, _)| *d <= to)
                                    .copied()
                                    .collect();
                                for e in &due {
                                    model.remove(e);
                                }
                                due
                            };
                            if fired != expect {
                                return Err(format!("at {to}: fired {fired:?} != {expect:?}"));
                            }
                            now = to;
                        } else {
                            let seq = insert(&mut w, t);
                            model.insert((t, seq));
                        }
                        let model_next = model.iter().next().map(|(d, _)| *d);
                        if w.next_deadline() != model_next {
                            return Err(format!(
                                "next_deadline {:?} != model {:?}",
                                w.next_deadline(),
                                model_next
                            ));
                        }
                        if w.len() != model.len() {
                            return Err(format!("len {} != model {}", w.len(), model.len()));
                        }
                    }
                    Ok(())
                },
            );
    }
}
