//! # nexus-exec
//!
//! A std-only async executor for the NEXUS scale harness (DESIGN.md §14).
//!
//! The multi-client engine of PR 4 burns one OS thread (or pool worker)
//! per simulated client, which caps rigs at tens of clients. This crate
//! multiplexes *tens of thousands* of client state machines over a handful
//! of OS threads using nothing but `std`: hand-rolled `Future` polling — no
//! tokio, per the hermetic zero-dependency policy — with
//!
//! - a **run queue** of waker-schedulable tasks ([`Executor::spawn`]),
//!   drained by the driver thread plus up to [`MAX_WORKERS`]`-1` helpers;
//! - a **virtual-time reactor**: a hierarchical [`wheel::TimerWheel`] keyed
//!   by [`SimClock`] nanoseconds. When every task is parked the driver
//!   advances the shared clock straight to the earliest deadline and wakes
//!   that batch — simulated time never waits for wall-clock sleeps;
//! - **async storage adapters** ([`io`]) that park each RPC at the issuing
//!   client's [`ClockLane`] time, so cross-client operations execute in
//!   global issue-time order and in-flight RPCs genuinely overlap in
//!   simulated time.
//!
//! ## Determinism
//!
//! With a single worker (the driver itself, [`Executor::single`]) execution
//! is fully deterministic: the wheel fires `(deadline, seq)`-ordered
//! batches into a FIFO queue drained by one thread, so an async-interleaved
//! run equals the serial oracle event-for-event (pinned by the
//! `exec_differential` suite in `nexus-workloads`). With extra workers,
//! tasks from one batch race; per-client streams stay deterministic but
//! cross-client interleaving is only transcript-stable for commuting
//! operations — which is what the scale workloads use.
//!
//! A task's waker is its task handle: wakers are stable across polls, so
//! futures in this crate register once and never re-register on spurious
//! polls.

use std::any::Any;
use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use nexus_storage::SimClock;
use nexus_sync::{Monitor, Mutex};

pub mod io;
pub mod wheel;

use wheel::TimerWheel;

/// Hard ceiling on OS threads an executor may use (driver included). The
/// whole point of this crate is that client count and thread count are
/// independent; the scale gates assert `os_threads() <= MAX_WORKERS` while
/// driving 100k clients.
pub const MAX_WORKERS: usize = 8;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

// Task scheduling states: the state machine guarantees a task is in the
// run queue at most once, no matter how many wakers fire concurrently.
const IDLE: u8 = 0; // parked, not queued
const QUEUED: u8 = 1; // in the run queue
const RUNNING: u8 = 2; // being polled
const NOTIFIED: u8 = 3; // being polled AND woken again: requeue after poll

struct Task {
    state: AtomicU8,
    future: Mutex<Option<BoxFuture>>,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        Shared::schedule(self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        Shared::schedule(self.clone());
    }
}

/// Run-queue state guarded by the executor's monitor. `active` counts
/// tasks currently being polled; quiescence is `runnable.is_empty() &&
/// active == 0`, the only point where firing timers is race-free.
struct QueueState {
    runnable: VecDeque<Arc<Task>>,
    active: usize,
    shutdown: bool,
}

struct Shared {
    queue: Monitor<QueueState>,
    clock: SimClock,
    wheel: Mutex<TimerWheel>,
    /// First panic payload captured from a task; re-raised (with the
    /// original payload) on the driver when `run_until_idle` finishes.
    panics: Mutex<Vec<Box<dyn Any + Send>>>,
}

impl Shared {
    fn schedule(task: Arc<Task>) {
        loop {
            let state = task.state.load(Ordering::Acquire);
            match state {
                IDLE => {
                    if task
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let shared = task.shared.clone();
                        shared.queue.lock().runnable.push_back(task);
                        shared.queue.notify_one();
                        return;
                    }
                }
                RUNNING => {
                    if task
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued / already notified: the wakeup coalesces.
                _ => return,
            }
        }
    }

    /// Polls one task. Runs on the driver and on helper workers alike.
    fn run_task(self: &Arc<Self>, task: Arc<Task>) {
        task.state.store(RUNNING, Ordering::Release);
        let Some(mut fut) = task.future.lock().take() else {
            // Completed task woken by a stale timer entry: nothing to do.
            task.state.store(IDLE, Ordering::Release);
            return;
        };
        let waker = Waker::from(task.clone());
        let mut cx = Context::from_waker(&waker);
        match catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx))) {
            Ok(Poll::Ready(())) => {
                task.state.store(IDLE, Ordering::Release);
            }
            Ok(Poll::Pending) => {
                *task.future.lock() = Some(fut);
                if task
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // Woken during the poll (NOTIFIED): requeue.
                    task.state.store(QUEUED, Ordering::Release);
                    self.queue.lock().runnable.push_back(task);
                    self.queue.notify_one();
                }
            }
            Err(payload) => {
                task.state.store(IDLE, Ordering::Release);
                self.panics.lock().push(payload);
            }
        }
    }

    /// Pops a runnable task, or returns `None` at quiescence (queue empty
    /// and nobody mid-poll). Blocks while other workers are still active,
    /// since they may enqueue more work.
    fn pop_or_quiesce(&self) -> Option<Arc<Task>> {
        let mut guard = self.queue.lock();
        loop {
            if let Some(task) = guard.runnable.pop_front() {
                guard.active += 1;
                return Some(task);
            }
            if guard.active == 0 {
                return None;
            }
            guard = self.queue.wait(guard);
        }
    }

    /// Marks a popped task finished; wakes quiescence waiters at the end.
    fn finish_task(&self) {
        let mut guard = self.queue.lock();
        guard.active -= 1;
        if guard.active == 0 && guard.runnable.is_empty() {
            drop(guard);
            self.queue.notify_all();
        }
    }

    /// Helper-worker loop: drain tasks until shutdown. Helpers never fire
    /// timers — only the driver advances virtual time.
    fn worker_loop(self: Arc<Self>) {
        loop {
            let task = {
                let mut guard = self.queue.lock();
                loop {
                    if guard.shutdown {
                        return;
                    }
                    if let Some(task) = guard.runnable.pop_front() {
                        guard.active += 1;
                        break task;
                    }
                    guard = self.queue.wait(guard);
                }
            };
            self.run_task(task);
            self.finish_task();
        }
    }
}

/// Result slot shared between a spawned task and its [`JoinHandle`].
struct JoinSlot<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task's output.
///
/// Await it from another task, or call [`JoinHandle::try_take`] after
/// [`Executor::run_until_idle`] returns.
pub struct JoinHandle<T> {
    slot: Arc<Mutex<JoinSlot<T>>>,
}

impl<T> JoinHandle<T> {
    /// The task's output, if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.slot.lock().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut guard = self.slot.lock();
        match guard.result.take() {
            Some(out) => Poll::Ready(out),
            None => {
                guard.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// The executor. See the crate docs for the model.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// An executor over `clock` using `threads` OS threads in total — the
    /// calling (driver) thread plus `threads - 1` helpers. Clamped to
    /// `[1, MAX_WORKERS]`.
    pub fn new(clock: SimClock, threads: usize) -> Executor {
        let threads = threads.clamp(1, MAX_WORKERS);
        let shared = Arc::new(Shared {
            queue: Monitor::new(QueueState {
                runnable: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            clock,
            wheel: Mutex::new(TimerWheel::new()),
            panics: Mutex::new(Vec::new()),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        Executor { shared, workers }
    }

    /// A single-threaded (fully deterministic) executor.
    pub fn single(clock: SimClock) -> Executor {
        Executor::new(clock, 1)
    }

    /// Total OS threads this executor polls tasks on (driver included).
    pub fn os_threads(&self) -> usize {
        1 + self.workers.len()
    }

    /// The virtual clock driving the reactor.
    pub fn clock(&self) -> &SimClock {
        &self.shared.clock
    }

    /// A handle for creating timer futures; cheap to clone into tasks.
    pub fn timer(&self) -> Timer {
        Timer { shared: self.shared.clone() }
    }

    /// Spawns a future onto the run queue.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let slot = Arc::new(Mutex::new(JoinSlot { result: None, waker: None }));
        let inner = slot.clone();
        let wrapped = async move {
            let out = fut.await;
            let joiner = {
                let mut guard = inner.lock();
                guard.result = Some(out);
                guard.waker.take()
            };
            if let Some(w) = joiner {
                w.wake();
            }
        };
        let task = Arc::new(Task {
            state: AtomicU8::new(IDLE),
            future: Mutex::new(Some(Box::pin(wrapped))),
            shared: self.shared.clone(),
        });
        Shared::schedule(task);
        JoinHandle { slot }
    }

    /// Drives the executor until no task is runnable and no timer is
    /// pending, advancing the virtual clock to each earliest deadline as
    /// the run queue quiesces. Returns the clock's final reading.
    ///
    /// A task that parks on something other than a timer or a join (i.e. a
    /// deadlock) is abandoned when the wheel drains. If any task panicked,
    /// the first captured payload is re-raised here — after all other
    /// tasks have run.
    pub fn run_until_idle(&self) -> Duration {
        loop {
            while let Some(task) = self.shared.pop_or_quiesce() {
                self.shared.run_task(task);
                self.shared.finish_task();
            }
            // Quiescent: all tasks parked. Jump virtual time to the next
            // deadline and wake that batch, earliest-(deadline, seq) first.
            let batch = {
                let mut wheel = self.shared.wheel.lock();
                match wheel.next_deadline() {
                    None => break,
                    Some(deadline) => {
                        let batch = wheel.advance(deadline);
                        drop(wheel);
                        self.shared.clock.advance_to(Duration::from_nanos(deadline));
                        batch
                    }
                }
            };
            for entry in batch {
                entry.fired.store(true, Ordering::Release);
                entry.waker.wake();
            }
        }
        let payload = self.shared.panics.lock().drain(..).next();
        if let Some(p) = payload {
            resume_unwind(p);
        }
        self.shared.clock.now()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.queue.lock().shutdown = true;
        self.shared.queue.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Factory for timer futures on an executor's reactor.
#[derive(Clone)]
pub struct Timer {
    shared: Arc<Shared>,
}

impl Timer {
    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.shared.clock.now()
    }

    /// The shared clock behind this timer.
    pub fn clock(&self) -> &SimClock {
        &self.shared.clock
    }

    /// Completes when virtual time reaches `deadline`. Resolves
    /// immediately (no registration) if the clock is already there.
    pub fn sleep_until(&self, deadline: Duration) -> Sleep {
        self.make(deadline, false)
    }

    /// Completes after `d` more virtual time.
    pub fn sleep(&self, d: Duration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Parks in the wheel at `at` and yields **even if already due**.
    ///
    /// This is the ordering primitive of the simulation: the shared clock
    /// is the max over all lanes, so "now" may have run past a slower
    /// client's issue time. `schedule_at(lane.local_now())` re-enters the
    /// task through the wheel, which fires in `(deadline, seq)` order —
    /// cross-client operations therefore execute in global issue-time
    /// order no matter how far individual lanes have drifted apart.
    pub fn schedule_at(&self, at: Duration) -> Sleep {
        self.make(at, true)
    }

    fn make(&self, deadline: Duration, always_yield: bool) -> Sleep {
        Sleep {
            shared: self.shared.clone(),
            deadline_nanos: u64::try_from(deadline.as_nanos()).unwrap_or(u64::MAX),
            fired: Arc::new(AtomicBool::new(false)),
            registered: false,
            always_yield,
        }
    }
}

/// Future returned by [`Timer::sleep`], [`Timer::sleep_until`], and
/// [`Timer::schedule_at`].
pub struct Sleep {
    shared: Arc<Shared>,
    deadline_nanos: u64,
    fired: Arc<AtomicBool>,
    registered: bool,
    always_yield: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.fired.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        if !self.registered {
            if !self.always_yield
                && self.shared.clock.now() >= Duration::from_nanos(self.deadline_nanos)
            {
                return Poll::Ready(());
            }
            self.registered = true;
            let (deadline, fired) = (self.deadline_nanos, self.fired.clone());
            self.shared.wheel.lock().insert(deadline, cx.waker().clone(), fired);
        }
        // Registered and not fired: a spurious poll. Wakers are stable on
        // this executor (the waker IS the task), so no re-registration.
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_sync::Mutex;

    #[test]
    fn spawn_and_join() {
        let ex = Executor::single(SimClock::new());
        let h = ex.spawn(async { 6 * 7 });
        ex.run_until_idle();
        assert_eq!(h.try_take(), Some(42));
    }

    #[test]
    fn join_handle_awaitable_from_another_task() {
        let ex = Executor::single(SimClock::new());
        let t = ex.timer();
        let inner = ex.spawn(async move {
            t.sleep(Duration::from_millis(5)).await;
            "done"
        });
        let outer = ex.spawn(async move { inner.await.len() });
        ex.run_until_idle();
        assert_eq!(outer.try_take(), Some(4));
    }

    #[test]
    fn virtual_time_jumps_instead_of_sleeping() {
        let clock = SimClock::new();
        let ex = Executor::single(clock.clone());
        let t = ex.timer();
        ex.spawn(async move { t.sleep(Duration::from_secs(3600)).await });
        let wall = std::time::Instant::now();
        ex.run_until_idle();
        assert_eq!(clock.now(), Duration::from_secs(3600));
        assert!(wall.elapsed() < std::time::Duration::from_secs(5), "no real sleeping");
    }

    #[test]
    fn sleepers_wake_in_deadline_order() {
        let ex = Executor::single(SimClock::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        for (label, ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let t = ex.timer();
            let order = order.clone();
            ex.spawn(async move {
                t.sleep_until(Duration::from_millis(ms)).await;
                order.lock().push(label);
            });
        }
        ex.run_until_idle();
        assert_eq!(*order.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn schedule_at_yields_even_when_due() {
        // The clock has run ahead; schedule_at must still park and fire in
        // deadline order relative to other past-time registrations.
        let clock = SimClock::new();
        clock.advance(Duration::from_millis(100));
        let ex = Executor::single(clock.clone());
        let order = Arc::new(Mutex::new(Vec::new()));
        for (label, ms) in [("late", 90u64), ("early", 10)] {
            let t = ex.timer();
            let order = order.clone();
            ex.spawn(async move {
                t.schedule_at(Duration::from_millis(ms)).await;
                order.lock().push(label);
            });
        }
        ex.run_until_idle();
        assert_eq!(*order.lock(), vec!["early", "late"]);
        assert_eq!(clock.now(), Duration::from_millis(100), "past deadlines move no time");
    }

    #[test]
    fn ten_thousand_tasks_on_bounded_threads() {
        let clock = SimClock::new();
        let ex = Executor::new(clock.clone(), 64); // asks for 64, gets MAX_WORKERS
        assert!(ex.os_threads() <= MAX_WORKERS);
        let handles: Vec<_> = (0..10_000u64)
            .map(|i| {
                let t = ex.timer();
                ex.spawn(async move {
                    t.sleep(Duration::from_micros(i % 97)).await;
                    i
                })
            })
            .collect();
        ex.run_until_idle();
        let sum: u64 = handles.iter().map(|h| h.try_take().expect("completed")).sum();
        assert_eq!(sum, (0..10_000u64).sum());
    }

    #[test]
    fn task_panic_payload_resurfaces_on_driver() {
        let ex = Executor::single(SimClock::new());
        let survivor = ex.spawn(async { 1u32 });
        ex.spawn(async { panic!("task exploded: {}", 99) });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| ex.run_until_idle()))
            .expect_err("panic must resurface");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("original string payload");
        assert_eq!(msg, "task exploded: 99");
        // Other tasks still ran to completion first.
        assert_eq!(survivor.try_take(), Some(1));
    }

    #[test]
    fn run_until_idle_is_reentrant() {
        let clock = SimClock::new();
        let ex = Executor::single(clock.clone());
        let t = ex.timer();
        ex.spawn(async move { t.sleep(Duration::from_millis(1)).await });
        ex.run_until_idle();
        let t = ex.timer();
        let h = ex.spawn(async move {
            t.sleep(Duration::from_millis(2)).await;
            7
        });
        ex.run_until_idle();
        assert_eq!(h.try_take(), Some(7));
        assert_eq!(clock.now(), Duration::from_millis(3));
    }
}
