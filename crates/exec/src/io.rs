//! Async adapters for the simulated storage backends.
//!
//! The storage simulators are synchronous: an RPC advances the caller's
//! [`ClockLane`] by its modelled cost and returns. What makes them *async*
//! here is ordering, not blocking — before each operation the adapter
//! parks the task in the executor's timer wheel at the lane's local time
//! ([`Timer::schedule_at`]), so operations from thousands of clients
//! execute in global issue-time order while their RPC costs overlap in
//! simulated time (each lane advances privately; the shared clock reads
//! the max).
//!
//! [`AsyncStorage`] wraps any backend that exposes its lane
//! ([`LaneBackend`]: the AFS client and the cloud simulator); the batched
//! RPC surface (`get_many`/`put_many`/`stat_many`) is forwarded with the
//! same park-then-issue discipline, charging one batched RPC per call.

use std::sync::Arc;
use std::time::Duration;

use nexus_storage::afs::AfsClient;
use nexus_storage::cloud::CloudStore;
use nexus_storage::{ClockLane, ObjectStat, StorageBackend, StorageError};

use crate::Timer;

/// A storage backend whose RPC costs are charged to a per-client lane.
pub trait LaneBackend: StorageBackend {
    /// The clock channel this backend charges RPC time to.
    fn io_lane(&self) -> &ClockLane;
}

impl LaneBackend for AfsClient {
    fn io_lane(&self) -> &ClockLane {
        self.lane()
    }
}

impl LaneBackend for CloudStore {
    fn io_lane(&self) -> &ClockLane {
        self.lane()
    }
}

/// An async handle over a lane-charging storage backend.
pub struct AsyncStorage<B: LaneBackend> {
    backend: Arc<B>,
    timer: Timer,
}

impl<B: LaneBackend> Clone for AsyncStorage<B> {
    fn clone(&self) -> Self {
        AsyncStorage { backend: self.backend.clone(), timer: self.timer.clone() }
    }
}

impl<B: LaneBackend> AsyncStorage<B> {
    /// Wraps `backend`, parking each operation on `timer`'s wheel.
    pub fn new(backend: Arc<B>, timer: Timer) -> AsyncStorage<B> {
        AsyncStorage { backend, timer }
    }

    /// The wrapped synchronous backend.
    pub fn backend(&self) -> &Arc<B> {
        &self.backend
    }

    /// The timer this adapter parks on (for layering further async
    /// adapters — e.g. an async volume — over the same wheel and lane).
    pub fn timer(&self) -> &Timer {
        &self.timer
    }

    /// This client's lane-local virtual time.
    pub fn local_now(&self) -> Duration {
        self.backend.io_lane().local_now()
    }

    /// Parks until every operation issued earlier (on any client) has
    /// executed, then returns with the task ordered at this lane's time.
    async fn turn(&self) {
        self.timer.schedule_at(self.backend.io_lane().local_now()).await;
    }

    /// Parks until `arrival`, raising the lane there — an open-loop
    /// arrival: the connection is idle until its scheduled request time.
    pub async fn begin_at(&self, arrival: Duration) {
        let at = arrival.max(self.backend.io_lane().local_now());
        self.timer.schedule_at(at).await;
        self.backend.io_lane().raise_to(arrival);
    }

    /// Async `get`: park at issue time, then fetch (lane pays the cost).
    pub async fn get(&self, path: &str) -> Result<Vec<u8>, StorageError> {
        self.turn().await;
        self.backend.get(path)
    }

    /// Async `put`.
    pub async fn put(&self, path: &str, data: &[u8]) -> Result<(), StorageError> {
        self.turn().await;
        self.backend.put(path, data)
    }

    /// Async `stat`.
    pub async fn stat(&self, path: &str) -> Result<ObjectStat, StorageError> {
        self.turn().await;
        self.backend.stat(path)
    }

    /// Async `delete`.
    pub async fn delete(&self, path: &str) -> Result<(), StorageError> {
        self.turn().await;
        self.backend.delete(path)
    }

    /// Async `exists`.
    pub async fn exists(&self, path: &str) -> bool {
        self.turn().await;
        self.backend.exists(path)
    }

    /// Async batched fetch: one batched RPC for the whole set.
    pub async fn get_many(&self, paths: &[String]) -> Vec<Result<Vec<u8>, StorageError>> {
        self.turn().await;
        self.backend.get_many(paths)
    }

    /// Async batched store: one batched RPC for the whole set.
    pub async fn put_many(&self, items: &[(String, Vec<u8>)]) -> Vec<Result<(), StorageError>> {
        self.turn().await;
        self.backend.put_many(items)
    }

    /// Async batched stat: one batched RPC for the whole set.
    pub async fn stat_many(&self, paths: &[String]) -> Vec<Result<ObjectStat, StorageError>> {
        self.turn().await;
        self.backend.stat_many(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use nexus_storage::afs::AfsServer;
    use nexus_storage::{LatencyModel, SimClock};

    #[test]
    fn rpcs_from_different_clients_overlap_in_simulated_time() {
        let server = AfsServer::new();
        let clock = SimClock::new();
        let latency = LatencyModel::paper_calibrated();
        let ex = Executor::single(clock.clone());
        let per_op = latency.rpc_cost(16);
        let n = 50usize;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let afs = AsyncStorage::new(
                    Arc::new(AfsClient::connect(&server, clock.clone(), latency)),
                    ex.timer(),
                );
                ex.spawn(async move {
                    for k in 0..4 {
                        afs.put(&format!("c{i}/o{k}"), &[i as u8; 16]).await.expect("put");
                    }
                    afs.local_now()
                })
            })
            .collect();
        let makespan = ex.run_until_idle();
        // Every client paid 4 ops on its own lane...
        for h in &handles {
            assert_eq!(h.try_take().expect("done"), per_op * 4);
        }
        // ...but the round's makespan is one client's work, not the sum:
        // 50 clients' RPCs overlapped in simulated time.
        assert_eq!(makespan, per_op * 4);
    }

    #[test]
    fn cross_client_read_after_write_sees_the_writers_time() {
        let server = AfsServer::new();
        let clock = SimClock::new();
        let latency = LatencyModel::paper_calibrated();
        let ex = Executor::single(clock.clone());
        let writer = AsyncStorage::new(
            Arc::new(AfsClient::connect(&server, clock.clone(), latency)),
            ex.timer(),
        );
        let reader = AsyncStorage::new(
            Arc::new(AfsClient::connect(&server, clock.clone(), latency)),
            ex.timer(),
        );
        let write_done = latency.rpc_cost(64);
        let h = ex.spawn(async move {
            writer.put("shared/x", &[7u8; 64]).await.expect("put");
            // Reader issues strictly after the write completes.
            reader.begin_at(writer.local_now()).await;
            let data = reader.get("shared/x").await.expect("get");
            (data, reader.local_now())
        });
        ex.run_until_idle();
        let (data, reader_time) = h.try_take().expect("done");
        assert_eq!(data, vec![7u8; 64]);
        // The happens-before edge: the reader's lane is at least the
        // writer's completion plus its own fetch cost.
        assert!(reader_time >= write_done + latency.rpc_cost(64));
    }

    #[test]
    fn cloud_store_adapts_too() {
        let clock = SimClock::new();
        let ex = Executor::single(clock.clone());
        let cloud = AsyncStorage::new(
            Arc::new(CloudStore::new(clock.clone())),
            ex.timer(),
        );
        let h = ex.spawn(async move {
            cloud.put("bucket/obj", b"payload").await.expect("put");
            cloud.get("bucket/obj").await.expect("get")
        });
        ex.run_until_idle();
        assert_eq!(h.try_take().expect("done"), b"payload".to_vec());
    }

    #[test]
    fn batched_ops_charge_one_rpc() {
        let server = AfsServer::new();
        let clock = SimClock::new();
        let latency = LatencyModel::paper_calibrated();
        let ex = Executor::single(clock.clone());
        let client = Arc::new(AfsClient::connect(&server, clock.clone(), latency));
        let afs = AsyncStorage::new(client.clone(), ex.timer());
        let h = ex.spawn(async move {
            let items: Vec<(String, Vec<u8>)> =
                (0..8).map(|k| (format!("b/{k}"), vec![k as u8; 32])).collect();
            for r in afs.put_many(&items).await {
                r.expect("put_many");
            }
            afs.local_now()
        });
        ex.run_until_idle();
        let elapsed = h.try_take().expect("done");
        assert_eq!(elapsed, latency.batch_rpc_cost(8, 8 * 32));
        assert_eq!(client.stats().remote_rpcs, 1);
    }
}
