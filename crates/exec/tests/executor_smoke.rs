//! End-to-end executor smoke test, invoked by target name from
//! `scripts/verify.sh`: deleting this suite fails the gate loudly instead
//! of silently shrinking coverage.
//!
//! One compact scenario exercises the whole stack: many simulated clients
//! multiplexed over a bounded thread count, timer-wheel wakeups in virtual
//! time, and the async storage adapter overlapping lanes in simulated time.

use std::sync::Arc;
use std::time::Duration;

use nexus_exec::io::AsyncStorage;
use nexus_exec::{Executor, MAX_WORKERS};
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, SimClock, StorageBackend};

#[test]
fn two_thousand_clients_on_a_handful_of_threads() {
    let server = AfsServer::new();
    let clock = SimClock::new();
    let latency = LatencyModel::paper_calibrated();
    let ex = Executor::new(clock.clone(), MAX_WORKERS);
    assert!(ex.os_threads() <= MAX_WORKERS);

    const CLIENTS: usize = 2000;
    const OPS: usize = 3;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let afs = AsyncStorage::new(
                Arc::new(AfsClient::connect(&server, clock.clone(), latency)),
                ex.timer(),
            );
            ex.spawn(async move {
                for k in 0..OPS {
                    afs.put(&format!("c{c}/o{k}"), &[c as u8; 24]).await.expect("put");
                }
                let back = afs.get(&format!("c{c}/o0")).await.expect("get");
                assert_eq!(back, vec![c as u8; 24]);
                afs.local_now()
            })
        })
        .collect();
    let makespan = ex.run_until_idle();

    // Every client finished all its ops...
    let per_client = latency.rpc_cost(24) * OPS as u32 + latency.cache_hit;
    for h in &handles {
        assert_eq!(h.try_take().expect("client completed"), per_client);
    }
    // ...yet the simulated makespan is ONE client's work: 2000 in-flight
    // connections overlapped, which is the whole point of the executor.
    assert_eq!(makespan, per_client);
    // And the server really holds every object.
    assert_eq!(server.object_inventory().len(), CLIENTS * OPS);
    assert!(server.raw_store().exists("c0/o0"));
}
