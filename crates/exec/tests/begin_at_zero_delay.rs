//! Regression gate: `AsyncStorage::begin_at` with an arrival at (or
//! before) the lane's current time must not spin. The timer wheel's
//! `schedule_at` is specified to yield exactly once even when the
//! deadline is already due; if a refactor ever turns that into a
//! ready-poll loop or a double wakeup, open-loop clients that have
//! fallen behind their arrival schedule — the common case under
//! overload — would burn a poll per spin on every queued operation.
//!
//! The probe counts raw `Future::poll` calls on the client task around
//! the `begin_at().await`. The poll that registers in the wheel is the
//! one already running when the await starts, so a correct `begin_at`
//! suspends the task exactly once: precisely one further poll (the
//! wakeup) completes it. Zero would mean the yield was skipped; two or
//! more means the wheel re-queued the task — a spin.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;

use nexus_exec::io::AsyncStorage;
use nexus_exec::Executor;
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, SimClock};

/// Wraps a future and counts every `poll` the executor issues to it.
struct CountPolls<F> {
    inner: Pin<Box<F>>,
    polls: Arc<AtomicUsize>,
}

impl<F: Future> Future for CountPolls<F> {
    type Output = F::Output;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
        self.polls.fetch_add(1, Ordering::SeqCst);
        self.inner.as_mut().poll(cx)
    }
}

fn polls_for(arrival_offset: Option<Duration>) -> usize {
    let server = AfsServer::new();
    let clock = SimClock::new();
    // Single-threaded executor: the poll count is exact, not racy.
    let ex = Executor::single(clock.clone());
    let afs = AsyncStorage::new(
        Arc::new(AfsClient::connect(&server, clock.clone(), LatencyModel::paper_calibrated())),
        ex.timer(),
    );
    let polls = Arc::new(AtomicUsize::new(0));
    let counted = CountPolls {
        polls: polls.clone(),
        inner: Box::pin(async move {
            // Give the lane some history so "now" is not the epoch.
            afs.put("warm", b"x").await.expect("warm put");
            let arrival = match arrival_offset {
                // Arrival exactly at the lane's current time.
                None => afs.local_now(),
                // Arrival strictly in the past: client is behind schedule.
                Some(back) => afs.local_now().saturating_sub(back),
            };
            let before = polls.load(Ordering::SeqCst);
            afs.begin_at(arrival).await;
            polls.load(Ordering::SeqCst) - before
        }),
    };
    let inner_polls = counted.polls.clone();
    let handle = ex.spawn(counted);
    ex.run_until_idle();
    let begin_at_polls = handle.try_take().expect("client completed");
    // Sanity: the wrapper really observed the polls it reports on.
    assert!(inner_polls.load(Ordering::SeqCst) >= begin_at_polls);
    begin_at_polls
}

#[test]
fn begin_at_with_zero_delay_yields_exactly_once() {
    // begin_at(local_now()): already due. The await must suspend the
    // task exactly once — one wakeup poll, no spin. Zero would skip the
    // yield and break the global issue-time ordering the differential
    // suites rely on; two or more is the spin this gate exists to catch.
    assert_eq!(polls_for(None), 1);
}

#[test]
fn begin_at_in_the_past_yields_exactly_once() {
    // A client behind its open-loop arrival schedule: same bound.
    assert_eq!(polls_for(Some(Duration::from_millis(3))), 1);
}
