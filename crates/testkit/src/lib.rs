//! # nexus-testkit
//!
//! A deterministic, dependency-free property-testing harness — the
//! workspace's replacement for `proptest`, in keeping with the hermetic
//! zero-dependency build policy (see `DESIGN.md`).
//!
//! Three pieces:
//!
//! - **Seeded generation** — [`Gen`] wraps a xoshiro256** stream; every
//!   case is derived from `(base seed, case index)`, so a failing case is
//!   reproducible from the two numbers the failure report prints.
//! - **Shrinking-lite** — on failure the [`Runner`] asks the caller's
//!   shrink function for simpler candidates and greedily walks to a local
//!   minimum (first failing candidate wins, repeat until none fail). The
//!   [`shrink`] module provides canonical candidate sets for vectors,
//!   byte strings, and integers.
//! - **Regression replay** — explicit cases registered with
//!   [`Runner::regression`] run *before* any generated case, serving the
//!   role of proptest's `*.proptest-regressions` corpus as always-run,
//!   checked-in cases.
//!
//! Environment overrides for exploration (never needed in CI):
//! `NEXUS_TESTKIT_SEED` re-seeds generation, `NEXUS_TESTKIT_CASES`
//! changes the case count.
//!
//! ```
//! use nexus_testkit::{shrink, Runner};
//!
//! Runner::new("reverse_is_involutive")
//!     .cases(64)
//!     .run(
//!         |g| g.vec(0, 16, |g| g.u8()),
//!         |v| shrink::vec(v),
//!         |v| {
//!             let mut w = v.clone();
//!             w.reverse();
//!             w.reverse();
//!             nexus_testkit::tk_assert_eq!(&w, v);
//!             Ok(())
//!         },
//!     );
//! ```

use std::fmt::Debug;

/// Deterministic generator handed to case-generation closures.
///
/// xoshiro256** seeded through SplitMix64; the same construction as
/// `nexus_crypto::rng::SeededRandom`, duplicated here so the testkit has
/// no dependencies and can be a dev-dependency of every crate, including
/// `nexus-crypto` itself.
#[derive(Debug, Clone)]
pub struct Gen {
    s: [u64; 4],
}

impl Gen {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Gen {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Gen { s: [next(), next(), next(), next()] }
    }

    /// Returns the next 64 random bits.
    pub fn u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random `u8`.
    pub fn u8(&mut self) -> u8 {
        self.u64() as u8
    }

    /// A uniformly random `u32`.
    pub fn u32(&mut self) -> u32 {
        self.u64() as u32
    }

    /// A uniformly random `bool`.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A uniformly random `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random `u64` in `[0, bound)` via rejection sampling.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniformly random `usize` in `[0, bound)`.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// A uniformly random `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "usize_in: empty range {lo}..={hi}");
        lo + self.usize_below(hi - lo + 1)
    }

    /// A fresh array of `N` random bytes.
    pub fn bytes<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = self.u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }

    /// A random byte vector with length in `[min_len, max_len]`.
    pub fn byte_vec(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(min_len, max_len);
        let mut out = vec![0u8; len];
        for chunk in out.chunks_mut(8) {
            let bytes = self.u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }

    /// A vector with length in `[min_len, max_len]`, elements from `f`.
    pub fn vec<T>(&mut self, min_len: usize, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// A uniformly random element of `options`.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose from empty slice");
        &options[self.usize_below(options.len())]
    }

    /// A random string over `alphabet` with length in `[min_len, max_len]`.
    pub fn string(&mut self, alphabet: &[char], min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| *self.choose(alphabet)).collect()
    }

    /// A random index in `[0, len)` — proptest's `Index` equivalent for
    /// picking positions in data whose size the generator doesn't know yet.
    pub fn index(&mut self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            self.usize_below(len)
        }
    }
}

pub mod dist;
pub mod faults;
pub mod timing;

/// Canonical shrink-candidate sets: smaller-but-similar variants of a
/// failing case, ordered most-aggressive first so the greedy walk makes
/// big jumps before fine steps.
pub mod shrink {
    /// Candidates for a vector: empty, both halves, and the vector with
    /// one element removed (every position, capped at 64 removals).
    pub fn vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        if v.is_empty() {
            return out;
        }
        out.push(Vec::new());
        if v.len() > 1 {
            out.push(v[..v.len() / 2].to_vec());
            out.push(v[v.len() / 2..].to_vec());
        }
        for i in 0..v.len().min(64) {
            let mut shorter = v.to_vec();
            shorter.remove(i);
            out.push(shorter);
        }
        out
    }

    /// Candidates for a byte string: structural shrinks plus the string
    /// with each byte (capped) replaced by zero.
    pub fn bytes(v: &[u8]) -> Vec<Vec<u8>> {
        let mut out = vec(v);
        for i in 0..v.len().min(32) {
            if v[i] != 0 {
                let mut zeroed = v.to_vec();
                zeroed[i] = 0;
                out.push(zeroed);
            }
        }
        out
    }

    /// Candidates for an integer: zero, half, and predecessor.
    pub fn u64(x: u64) -> Vec<u64> {
        match x {
            0 => Vec::new(),
            1 => vec![0],
            _ => vec![0, x / 2, x - 1],
        }
    }

    /// No candidates — for cases where shrinking adds no diagnostic value
    /// (fixed-size keys, single scalars).
    pub fn none<T>(_: &T) -> Vec<T> {
        Vec::new()
    }

    /// Candidates for a stateful operation sequence: everything [`vec`]
    /// proposes (empty, halves, single-op drops), then the sequence with
    /// each adjacent pair swapped (capped at 32 swaps).
    ///
    /// Order-sensitive properties — cache invalidation, lock hand-off,
    /// accounting — often fail only because of *where* an op sits, not
    /// that it exists. A pure subsequence shrinker gets stuck at a local
    /// minimum where removing any op makes the failure vanish; a reorder
    /// step can still simplify by moving the conflicting pair next to each
    /// other. Length-reducing candidates come first so the greedy walk
    /// prefers shorter cases and the swaps cannot ping-pong (the runner's
    /// step cap bounds same-length walks).
    pub fn ops<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
        let mut out = vec(v);
        for i in 0..v.len().saturating_sub(1).min(32) {
            let mut swapped = v.to_vec();
            swapped.swap(i, i + 1);
            out.push(swapped);
        }
        out
    }
}

/// Where a failing case came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOrigin {
    /// An explicit always-run case registered via [`Runner::regression`].
    Regression(usize),
    /// A generated case: `(base seed, case index)`.
    Generated(u64, u32),
}

/// A property failure, after shrinking.
#[derive(Debug)]
pub struct Failure<T> {
    /// The shrunk (locally minimal) failing case.
    pub case: T,
    /// The case as originally found, before shrinking.
    pub original: T,
    /// Provenance — regression slot or `(seed, index)`.
    pub origin: CaseOrigin,
    /// The property's error message for the shrunk case.
    pub message: String,
    /// How many successful shrink steps were taken.
    pub shrink_steps: u32,
}

/// Statistics from a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Regression cases replayed (always before generation).
    pub regressions_run: usize,
    /// Generated cases executed.
    pub cases_run: u32,
}

/// A configured property test.
pub struct Runner<T> {
    name: &'static str,
    cases: u32,
    seed: u64,
    max_shrink_steps: u32,
    regressions: Vec<T>,
}

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Default base seed ("NEXUS" in hex-speak); override with
/// `NEXUS_TESTKIT_SEED` for exploration.
pub const DEFAULT_SEED: u64 = 0x4E45_5855_5300_0001;

impl<T: Clone + Debug> Runner<T> {
    /// Creates a runner for the property `name` (used in failure reports).
    pub fn new(name: &'static str) -> Runner<T> {
        Runner {
            name,
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_steps: 4096,
            regressions: Vec::new(),
        }
    }

    /// Sets the number of generated cases.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the base seed for case generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of shrink steps on failure.
    pub fn max_shrink_steps(mut self, steps: u32) -> Self {
        self.max_shrink_steps = steps;
        self
    }

    /// Registers an always-run regression case, replayed before any
    /// generated case (in registration order).
    pub fn regression(mut self, case: T) -> Self {
        self.regressions.push(case);
        self
    }

    /// Registers a batch of regression cases.
    pub fn regressions(mut self, cases: impl IntoIterator<Item = T>) -> Self {
        self.regressions.extend(cases);
        self
    }

    /// Runs the property, panicking with a reproduction report on failure.
    pub fn run(
        self,
        generate: impl FnMut(&mut Gen) -> T,
        shrink_fn: impl Fn(&T) -> Vec<T>,
        prop: impl FnMut(&T) -> Result<(), String>,
    ) -> RunStats {
        let name = self.name;
        match self.run_result(generate, shrink_fn, prop) {
            Ok(stats) => stats,
            Err(failure) => {
                let origin = match failure.origin {
                    CaseOrigin::Regression(i) => format!("regression case #{i}"),
                    CaseOrigin::Generated(seed, idx) => format!(
                        "generated case {idx} (seed {seed:#x}; rerun with \
                         NEXUS_TESTKIT_SEED={seed})"
                    ),
                };
                panic!(
                    "property `{name}` failed on {origin}\n\
                     minimal case (after {} shrink steps): {:#?}\n\
                     original case: {:#?}\n\
                     error: {}",
                    failure.shrink_steps, failure.case, failure.original, failure.message
                );
            }
        }
    }

    /// Like [`Runner::run`] but returns the failure instead of panicking —
    /// used by the harness's own tests.
    pub fn run_result(
        self,
        mut generate: impl FnMut(&mut Gen) -> T,
        shrink_fn: impl Fn(&T) -> Vec<T>,
        mut prop: impl FnMut(&T) -> Result<(), String>,
    ) -> Result<RunStats, Failure<T>> {
        // Regression replay strictly precedes generation.
        for (i, case) in self.regressions.iter().enumerate() {
            if let Err(message) = prop(case) {
                return Err(self.shrunk_failure(
                    case.clone(),
                    CaseOrigin::Regression(i),
                    message,
                    &shrink_fn,
                    &mut prop,
                ));
            }
        }

        let seed = env_u64("NEXUS_TESTKIT_SEED").unwrap_or(self.seed);
        let cases = env_u64("NEXUS_TESTKIT_CASES").map(|v| v as u32).unwrap_or(self.cases);
        for idx in 0..cases {
            // Each case gets an independent stream derived from
            // (seed, idx), so any single case replays without running
            // its predecessors.
            let mut gen = Gen::new(seed ^ (u64::from(idx).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let case = generate(&mut gen);
            if let Err(message) = prop(&case) {
                return Err(self.shrunk_failure(
                    case,
                    CaseOrigin::Generated(seed, idx),
                    message,
                    &shrink_fn,
                    &mut prop,
                ));
            }
        }
        Ok(RunStats { regressions_run: self.regressions.len(), cases_run: cases })
    }

    /// Greedy shrink: repeatedly move to the first failing candidate until
    /// no candidate fails or the step budget runs out.
    fn shrunk_failure(
        &self,
        original: T,
        origin: CaseOrigin,
        mut message: String,
        shrink_fn: &impl Fn(&T) -> Vec<T>,
        prop: &mut impl FnMut(&T) -> Result<(), String>,
    ) -> Failure<T> {
        let mut current = original.clone();
        let mut steps = 0u32;
        'outer: while steps < self.max_shrink_steps {
            for candidate in shrink_fn(&current) {
                if let Err(msg) = prop(&candidate) {
                    current = candidate;
                    message = msg;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        Failure { case: current, original, origin, message, shrink_steps: steps }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Returns `Err` from a property when `cond` is false (proptest's
/// `prop_assert!`).
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!("{}: {}", format!($($arg)+), stringify!($cond)));
        }
    };
}

/// Returns `Err` from a property when the two sides differ.
#[macro_export]
macro_rules! tk_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: `{} == {}`\n  left: {:?}\n right: {:?}",
                format!($($arg)+), stringify!($left), stringify!($right), l, r
            ));
        }
    }};
}

/// Returns `Err` from a property when the two sides are equal.
#[macro_export]
macro_rules! tk_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic_per_seed() {
        let mut a = Gen::new(1234);
        let mut b = Gen::new(1234);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        let mut c = Gen::new(1235);
        assert_ne!(Gen::new(1234).u64(), c.u64());
    }

    #[test]
    fn bounded_helpers_stay_in_bounds() {
        let mut g = Gen::new(9);
        for _ in 0..500 {
            assert!(g.u64_below(17) < 17);
            let v = g.usize_in(3, 9);
            assert!((3..=9).contains(&v));
            let s = g.string(&['x', 'y'], 1, 4);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'x' || c == 'y'));
        }
        assert_eq!(g.index(0), 0);
    }

    #[test]
    fn shrink_vec_candidates_are_all_smaller() {
        let v = vec![1u8, 2, 3, 4, 5];
        for cand in shrink::vec(&v) {
            assert!(cand.len() < v.len());
        }
        assert!(shrink::vec(&Vec::<u8>::new()).is_empty());
    }

    #[test]
    fn shrink_ops_adds_adjacent_swaps_after_reductions() {
        let v = vec![1u8, 2, 3];
        let cands = shrink::ops(&v);
        let reductions = shrink::vec(&v);
        assert_eq!(&cands[..reductions.len()], &reductions[..], "length-reducing first");
        assert!(cands[reductions.len()..].contains(&vec![2, 1, 3]));
        assert!(cands[reductions.len()..].contains(&vec![1, 3, 2]));
        assert!(cands.iter().all(|c| c.len() <= v.len()));
        assert!(shrink::ops(&Vec::<u8>::new()).is_empty());
        // A one-op sequence has no pair to swap: only reductions to empty.
        assert!(shrink::ops(&[9u8]).iter().all(|c| c.is_empty()));
    }

    #[test]
    fn reorder_shrink_escapes_subsequence_local_minima() {
        // Property fails iff a 2 appears somewhere before a 1 — removing
        // either element makes it pass, so `shrink::vec` alone cannot get
        // below the original pair positions; the swap candidates walk the
        // pair together until the case is the minimal adjacent [2, 1].
        let failure = Runner::new("adjacent_pair_minimum")
            .cases(0)
            .regression(vec![2u8, 7, 9, 1])
            .run_result(
                |g| g.byte_vec(0, 4),
                |case| shrink::ops(case),
                |case| {
                    let bad = case
                        .iter()
                        .position(|&x| x == 2)
                        .zip(case.iter().position(|&x| x == 1))
                        .is_some_and(|(i2, i1)| i2 < i1);
                    if bad {
                        Err("2 before 1".to_string())
                    } else {
                        Ok(())
                    }
                },
            )
            .expect_err("regression case must fail");
        assert_eq!(failure.case, vec![2, 1], "swaps + drops reach the minimal pair");
    }

    #[test]
    fn passing_property_reports_stats() {
        let stats = Runner::new("always_passes")
            .cases(10)
            .regression(vec![1u8])
            .run(|g| g.byte_vec(0, 8), shrink::none, |_| Ok(()));
        assert_eq!(stats, RunStats { regressions_run: 1, cases_run: 10 });
    }
}
