//! Deterministic samplers for load-generation: Zipf key popularity and
//! Poisson (exponential inter-arrival) request processes.
//!
//! Both samplers are *source-agnostic*: the core entry points take a
//! uniform `f64` in `[0, 1)`, so the scale harness drives them from
//! `nexus_crypto::rng::SeededRandom` streams while property tests drive
//! them from [`Gen`] — same math, same determinism guarantees. Sampling a
//! Zipf rank is an exact inverse-CDF lookup (binary search over the
//! precomputed CDF), not an approximation, so unit tests can pin empirical
//! frequencies directly against the closed-form probabilities.

use crate::Gen;
use std::time::Duration;

/// Zipf(α) distribution over ranks `0..n` (rank 0 is the hottest key).
///
/// `P(rank = k) = (k+1)^{-α} / H_{n,α}` with `H_{n,α} = Σ_{i=1..n} i^{-α}`
/// the generalized harmonic number. `α = 0` degenerates to uniform;
/// `α ≈ 1` is the classic web/keyspace popularity curve.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[k]` = P(rank <= k); strictly increasing, ends at ~1.0.
    cdf: Vec<f64>,
    /// The generalized harmonic number `H_{n,α}` (the normalizer).
    harmonic: f64,
    alpha: f64,
}

impl Zipf {
    /// A Zipf(α) sampler over `n` ranks.
    ///
    /// # Panics
    ///
    /// If `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty rank space");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let harmonic = acc;
        for v in &mut cdf {
            *v /= harmonic;
        }
        Zipf { cdf, harmonic, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank (every sample is 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Closed-form probability of `rank` (for pinning empirical counts).
    pub fn probability(&self, rank: usize) -> f64 {
        ((rank + 1) as f64).powf(-self.alpha) / self.harmonic
    }

    /// Maps a uniform `u ∈ [0, 1)` to a rank by exact inverse-CDF lookup.
    pub fn sample_with(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0);
        // First index whose CDF value exceeds u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Samples a rank from a [`Gen`] stream.
    pub fn sample(&self, g: &mut Gen) -> usize {
        self.sample_with(g.f64_unit())
    }
}

/// Exponential inter-arrival gaps — the spacing of a Poisson process.
///
/// An open-loop load generator schedules request *k+1* at
/// `t_k + next_gap(...)`; the resulting arrival process is Poisson with
/// the configured rate, independent of service times (the generator never
/// waits for responses, so coordinated omission is measurable).
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    mean_gap_nanos: f64,
}

impl PoissonArrivals {
    /// A process with the given mean inter-arrival gap.
    ///
    /// # Panics
    ///
    /// If `mean_gap` is zero.
    pub fn with_mean_gap(mean_gap: Duration) -> PoissonArrivals {
        assert!(!mean_gap.is_zero(), "mean inter-arrival gap must be positive");
        PoissonArrivals { mean_gap_nanos: mean_gap.as_nanos() as f64 }
    }

    /// A process with the given arrival rate in events per second.
    ///
    /// # Panics
    ///
    /// If `rate_hz` is not strictly positive and finite.
    pub fn from_rate_hz(rate_hz: f64) -> PoissonArrivals {
        assert!(rate_hz > 0.0 && rate_hz.is_finite(), "rate must be positive");
        PoissonArrivals { mean_gap_nanos: 1e9 / rate_hz }
    }

    /// The configured mean gap.
    pub fn mean_gap(&self) -> Duration {
        Duration::from_nanos(self.mean_gap_nanos as u64)
    }

    /// Maps a uniform `u ∈ [0, 1)` to a gap by inverse-CDF:
    /// `-ln(1 - u) · mean`.
    pub fn next_gap_with(&self, u: f64) -> Duration {
        let u = u.clamp(0.0, f64::from_bits(0x3FEF_FFFF_FFFF_FFFF)); // < 1.0
        let nanos = -(1.0 - u).ln() * self.mean_gap_nanos;
        Duration::from_nanos(nanos as u64)
    }

    /// Samples a gap from a [`Gen`] stream.
    pub fn next_gap(&self, g: &mut Gen) -> Duration {
        self.next_gap_with(g.f64_unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_frequencies_match_closed_form() {
        // n = 1000, α = 1.0: P(0) = 1/H_1000 ≈ 0.1336. 200k samples give
        // ±~0.3% standard error on the head; assert within 5% relative.
        let zipf = Zipf::new(1000, 1.0);
        let mut g = Gen::new(0xD15_7A11);
        let samples = 200_000usize;
        let mut counts = vec![0u64; 1000];
        for _ in 0..samples {
            counts[zipf.sample(&mut g)] += 1;
        }
        for rank in 0..3 {
            let expected = zipf.probability(rank);
            let observed = counts[rank] as f64 / samples as f64;
            let rel = (observed - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "rank {rank}: observed {observed:.5} vs closed-form {expected:.5} (rel {rel:.3})"
            );
        }
        // The head really is Zipf-heavy: rank 0 beats rank 9 by ~10x.
        assert!(counts[0] > counts[9] * 6);
    }

    #[test]
    fn zipf_closed_form_head_values() {
        // Hand-checked: H_{3,1} = 1 + 1/2 + 1/3 = 11/6.
        let zipf = Zipf::new(3, 1.0);
        assert!((zipf.probability(0) - 6.0 / 11.0).abs() < 1e-12);
        assert!((zipf.probability(1) - 3.0 / 11.0).abs() < 1e-12);
        assert!((zipf.probability(2) - 2.0 / 11.0).abs() < 1e-12);
        let total: f64 = (0..3).map(|r| zipf.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let zipf = Zipf::new(50, 0.0);
        for rank in 0..50 {
            assert!((zipf.probability(rank) - 0.02).abs() < 1e-12);
        }
        let mut g = Gen::new(7);
        let mut counts = vec![0u64; 50];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut g)] += 1;
        }
        // Every rank lands within 20% of the uniform expectation (2000).
        for (rank, &c) in counts.iter().enumerate() {
            assert!((1600..=2400).contains(&c), "rank {rank}: {c}");
        }
    }

    #[test]
    fn zipf_inverse_cdf_is_exact_at_boundaries() {
        let zipf = Zipf::new(4, 1.0);
        // u = 0 is always the hottest rank; u just below 1 the coldest.
        assert_eq!(zipf.sample_with(0.0), 0);
        assert_eq!(zipf.sample_with(0.999_999_999), 3);
        // Out-of-range inputs clamp instead of panicking or overflowing.
        assert_eq!(zipf.sample_with(-1.0), 0);
        assert_eq!(zipf.sample_with(2.0), 3);
    }

    #[test]
    fn poisson_mean_gap_matches_configuration() {
        // 100k exponential gaps at 1 ms mean: the sample mean has standard
        // error mean/√n ≈ 0.32%, so ±2% is a 6σ bound — deterministic seed
        // keeps it stable anyway.
        let arrivals = PoissonArrivals::with_mean_gap(Duration::from_millis(1));
        let mut g = Gen::new(0xA121_7A1);
        let n = 100_000u32;
        let total: Duration = (0..n).map(|_| arrivals.next_gap(&mut g)).sum();
        let mean = total / n;
        let lo = Duration::from_micros(980);
        let hi = Duration::from_micros(1020);
        assert!(mean >= lo && mean <= hi, "sample mean {mean:?} outside [{lo:?}, {hi:?}]");
    }

    #[test]
    fn poisson_rate_and_gap_constructors_agree() {
        let by_rate = PoissonArrivals::from_rate_hz(50.0);
        let by_gap = PoissonArrivals::with_mean_gap(Duration::from_millis(20));
        assert_eq!(by_rate.mean_gap(), by_gap.mean_gap());
        // Same uniform input → same gap, whichever way it was built.
        assert_eq!(by_rate.next_gap_with(0.5), by_gap.next_gap_with(0.5));
        // The median of an exponential is mean·ln 2.
        let median = by_rate.next_gap_with(0.5);
        let expect = Duration::from_nanos((20.0e6 * std::f64::consts::LN_2) as u64);
        let delta = if median > expect { median - expect } else { expect - median };
        assert!(delta < Duration::from_nanos(10), "{median:?} vs {expect:?}");
    }

    #[test]
    fn samplers_are_deterministic_across_streams() {
        let zipf = Zipf::new(100, 0.9);
        let arrivals = PoissonArrivals::from_rate_hz(1000.0);
        let run = |seed: u64| -> (Vec<usize>, Vec<Duration>) {
            let mut g = Gen::new(seed);
            let ranks = (0..64).map(|_| zipf.sample(&mut g)).collect();
            let gaps = (0..64).map(|_| arrivals.next_gap(&mut g)).collect();
            (ranks, gaps)
        };
        assert_eq!(run(42), run(42), "same seed, same stream");
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }
}
