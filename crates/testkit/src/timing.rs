//! Dudect-style statistical timing-leak detection (std-only).
//!
//! The harness follows the *dudect* recipe (Reparaz, Balasch, Verbauwhede,
//! "Dude, is my code constant time?"): collect a cost measurement for many
//! executions of the operation under test, split between two input classes
//! — a **fixed** input repeated verbatim and a fresh **random** input per
//! sample — and compare the two populations with Welch's t-test. If the
//! operation's cost is independent of its input, the two populations are
//! draws from the same distribution and the t statistic stays small; a
//! |t| above [`LEAK_T_THRESHOLD`] is the conventional "definitely leaking"
//! verdict.
//!
//! Two cost sources are supported:
//!
//! - **Deterministic model costs** ([`CacheModel`]): the caller replays a
//!   table-access trace (e.g. `Aes::encrypt_block_trace`) through a
//!   cold-cache model that charges a miss for the first touch of each
//!   64-byte line. This is noise-free, so classification is exactly
//!   reproducible from the seed — the form used by CI tests.
//! - **Wall-clock cycles**: the caller times the real operation and feeds
//!   the duration in. Informative on quiet machines, but never used for
//!   pass/fail in CI.
//!
//! Class order is decided by the seeded generator per sample, so neither
//! class systematically runs "first" (guards against drift when the cost
//! function is a real clock).

use crate::Gen;

/// |t| above which the two classes are declared distinguishable.
///
/// 4.5 is the threshold used by dudect; for the sample counts used here
/// the false-positive probability is far below 1e-5.
pub const LEAK_T_THRESHOLD: f64 = 4.5;

/// Which input class a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// The same fixed input every sample.
    Fixed,
    /// A fresh random input every sample.
    Random,
}

/// Streaming Welch's t-test over two sample populations.
///
/// Each class keeps Welford running moments, so the test is one pass and
/// numerically stable regardless of sample magnitudes.
#[derive(Debug, Clone, Default)]
pub struct TTest {
    n: [f64; 2],
    mean: [f64; 2],
    m2: [f64; 2],
}

impl TTest {
    /// Creates an empty accumulator.
    pub fn new() -> TTest {
        TTest::default()
    }

    /// Adds one cost measurement for `class`.
    pub fn push(&mut self, class: Class, value: f64) {
        let i = match class {
            Class::Fixed => 0,
            Class::Random => 1,
        };
        self.n[i] += 1.0;
        let delta = value - self.mean[i];
        self.mean[i] += delta / self.n[i];
        self.m2[i] += delta * (value - self.mean[i]);
    }

    /// Samples accumulated in (fixed, random) order.
    pub fn counts(&self) -> (u64, u64) {
        (self.n[0] as u64, self.n[1] as u64)
    }

    /// Welch's t statistic between the two classes.
    ///
    /// Degenerate cases are resolved deterministically: with fewer than two
    /// samples in either class the statistic is 0; when both classes have
    /// (near-)zero variance, equal means give 0 and different means give
    /// infinity — a constant-cost operation whose constant depends on the
    /// class is the starkest possible leak.
    pub fn t_statistic(&self) -> f64 {
        if self.n[0] < 2.0 || self.n[1] < 2.0 {
            return 0.0;
        }
        let var0 = self.m2[0] / (self.n[0] - 1.0);
        let var1 = self.m2[1] / (self.n[1] - 1.0);
        let denom = (var0 / self.n[0] + var1 / self.n[1]).sqrt();
        let diff = self.mean[0] - self.mean[1];
        if denom == 0.0 || !denom.is_finite() {
            return if diff == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (diff / denom).abs()
    }
}

/// Outcome of a leak analysis run.
#[derive(Debug, Clone)]
pub struct LeakReport {
    /// |Welch's t| between the fixed and random classes.
    pub t: f64,
    /// `t > LEAK_T_THRESHOLD`.
    pub leaking: bool,
    /// Samples collected per class.
    pub per_class: usize,
}

/// Runs a two-class leak analysis: `measure` is called once per sample with
/// the class to use and the seeded generator (for drawing the random-class
/// input), and returns the cost of one execution. Classes are interleaved
/// in seeded random order; the whole run is a pure function of `seed`,
/// `per_class`, and `measure`.
pub fn analyze(
    seed: u64,
    per_class: usize,
    mut measure: impl FnMut(Class, &mut Gen) -> f64,
) -> LeakReport {
    let mut g = Gen::new(seed);
    let mut test = TTest::new();
    let mut remaining = [per_class, per_class];
    while remaining[0] + remaining[1] > 0 {
        // Pick among the classes still owed samples, in proportion to what
        // each is owed, so the interleaving stays unbiased to the end.
        let pick = (g.u64() as usize) % (remaining[0] + remaining[1]);
        let class = if pick < remaining[0] { Class::Fixed } else { Class::Random };
        let i = match class {
            Class::Fixed => 0,
            Class::Random => 1,
        };
        remaining[i] -= 1;
        let cost = measure(class, &mut g);
        test.push(class, cost);
    }
    let t = test.t_statistic();
    LeakReport { t, leaking: t > LEAK_T_THRESHOLD, per_class }
}

/// Cost of touching a 64-byte line already resident in the model.
pub const CACHE_HIT_COST: f64 = 1.0;
/// Cost of the compulsory miss that first brings a line in.
pub const CACHE_MISS_COST: f64 = 60.0;

/// A deterministic cold-start cache model for classifying table-access
/// traces.
///
/// Every lookup names a `(table, byte_offset)` pair; the model charges
/// [`CACHE_MISS_COST`] the first time each 64-byte line of each table is
/// touched and [`CACHE_HIT_COST`] after that. One model instance represents
/// one execution starting from a cold cache — the attacker-relevant state,
/// since which *lines* an encryption touches is exactly what a prime+probe
/// observer learns.
#[derive(Debug, Clone, Default)]
pub struct CacheModel {
    lines: std::collections::BTreeSet<(u8, u32)>,
    total: f64,
}

impl CacheModel {
    /// Creates an empty (cold) model.
    pub fn new() -> CacheModel {
        CacheModel::default()
    }

    /// Records an access to `byte_offset` within `table`.
    pub fn access(&mut self, table: u8, byte_offset: u32) {
        let line = byte_offset >> 6;
        self.total += if self.lines.insert((table, line)) {
            CACHE_MISS_COST
        } else {
            CACHE_HIT_COST
        };
    }

    /// Total modelled cost of the accesses so far.
    pub fn cost(&self) -> f64 {
        self.total
    }

    /// Distinct (table, line) pairs touched so far.
    pub fn lines_touched(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_do_not_flag() {
        // Same deterministic distribution for both classes.
        let report = analyze(7, 2000, |_, g| (g.u64() % 64) as f64);
        assert!(!report.leaking, "t = {}", report.t);
        assert!(report.t < LEAK_T_THRESHOLD);
    }

    #[test]
    fn shifted_distributions_flag() {
        let report = analyze(8, 2000, |class, g| {
            let base = (g.u64() % 64) as f64;
            match class {
                Class::Fixed => base,
                Class::Random => base + 8.0,
            }
        });
        assert!(report.leaking, "t = {}", report.t);
    }

    #[test]
    fn constant_equal_costs_give_zero_t() {
        let report = analyze(9, 100, |_, _| 42.0);
        assert_eq!(report.t, 0.0);
        assert!(!report.leaking);
    }

    #[test]
    fn constant_unequal_costs_give_infinite_t() {
        let report = analyze(10, 100, |class, _| match class {
            Class::Fixed => 1.0,
            Class::Random => 2.0,
        });
        assert!(report.t.is_infinite());
        assert!(report.leaking);
    }

    #[test]
    fn analyze_is_deterministic_in_the_seed() {
        let run = || analyze(11, 500, |class, g| {
            let v = (g.u64() % 16) as f64;
            if class == Class::Fixed { v * 2.0 } else { v }
        });
        let (a, b) = (run(), run());
        assert_eq!(a.t, b.t);
        assert_eq!(a.leaking, b.leaking);
    }

    #[test]
    fn cache_model_charges_miss_once_per_line() {
        let mut m = CacheModel::new();
        m.access(0, 0);
        m.access(0, 63); // same 64-byte line
        m.access(0, 64); // next line
        m.access(1, 0); // same offset, different table
        assert_eq!(m.lines_touched(), 3);
        assert_eq!(m.cost(), 3.0 * CACHE_MISS_COST + CACHE_HIT_COST);
    }

    #[test]
    fn welch_t_matches_direct_computation() {
        let mut t = TTest::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            t.push(Class::Fixed, v);
        }
        for v in [2.0, 4.0, 6.0, 8.0] {
            t.push(Class::Random, v);
        }
        // means 2.5 / 5.0; vars 5/3 and 20/3; n = 4 each.
        let expect = (2.5f64 - 5.0).abs() / ((5.0f64 / 3.0 / 4.0) + (20.0 / 3.0 / 4.0)).sqrt();
        assert!((t.t_statistic() - expect).abs() < 1e-12);
    }
}
