//! Exhaustive fault-sweep driver for crash-recovery suites.
//!
//! The crash-consistency property a durable store must satisfy is not
//! "survives a crash" but "survives a crash at *every* I/O boundary": a
//! store that fsyncs in the wrong order only loses data when the crash
//! lands between the two steps, so sampling a few crash points proves
//! nothing. The driver here makes the exhaustive form cheap to express:
//!
//! 1. The caller first runs the workload once with a counting hook to
//!    learn how many fault points the op sequence crosses.
//! 2. [`sweep`] then replays the workload once per `(point index, kind)`
//!    pair — each run injecting exactly one fault — and hands each pair to
//!    the caller's check, which is expected to run the workload, crash at
//!    the injected point, reopen the store, and verify the recovered state
//!    (typically against an in-memory oracle, prefix-consistency style).
//!
//! The driver is deliberately generic over the fault-kind type: the
//! concrete hook machinery (`FaultHook`, `FireAt`, …) lives with the
//! backends in `nexus-storage`, and the testkit stays dependency-free.
//!
//! `NEXUS_TESTKIT_FAULT_STRIDE` (default 1 = exhaustive) sweeps every
//! N-th point instead — an exploration knob for very long workloads,
//! never needed in CI.

use std::fmt::Debug;

/// Statistics from a completed sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Fault points the workload crosses (as counted by the caller).
    pub points: u64,
    /// Injected runs executed (`points x kinds`, divided by the stride).
    pub runs: u64,
}

/// A failing `(point, kind)` cell of the sweep.
#[derive(Debug)]
pub struct SweepFailure<K> {
    /// 0-based index of the fault point that was injected.
    pub point: u64,
    /// The failure shape injected there.
    pub kind: K,
    /// The check's error message.
    pub message: String,
}

/// Runs `check` for every `(point index, kind)` combination, panicking
/// with a reproduction report on the first failing cell.
///
/// `points` is the total number of fault points the op sequence crosses —
/// measure it by running the workload once under a counting hook. `check`
/// receives the point index to inject at and the kind to inject, and
/// returns `Err` if recovery after that crash violates the property.
pub fn sweep<K: Copy + Debug>(
    name: &str,
    points: u64,
    kinds: &[K],
    check: impl FnMut(u64, K) -> Result<(), String>,
) -> SweepStats {
    match sweep_result(points, kinds, check) {
        Ok(stats) => stats,
        Err(f) => panic!(
            "fault sweep `{name}` failed: crash injected at point {} ({:?}) \
             broke recovery\nerror: {}",
            f.point, f.kind, f.message
        ),
    }
}

/// Like [`sweep`] but returns the failing cell instead of panicking —
/// used by the harness's own tests.
pub fn sweep_result<K: Copy + Debug>(
    points: u64,
    kinds: &[K],
    mut check: impl FnMut(u64, K) -> Result<(), String>,
) -> Result<SweepStats, SweepFailure<K>> {
    let stride = std::env::var("NEXUS_TESTKIT_FAULT_STRIDE")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1);
    let mut runs = 0;
    for point in (0..points).step_by(stride as usize) {
        for &kind in kinds {
            runs += 1;
            if let Err(message) = check(point, kind) {
                return Err(SweepFailure { point, kind, message });
            }
        }
    }
    Ok(SweepStats { points, runs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_point_kind_cell() {
        let mut cells = Vec::new();
        let stats = sweep_result(3, &['t', 'd'], |p, k| {
            cells.push((p, k));
            Ok(())
        })
        .unwrap();
        assert_eq!(stats, SweepStats { points: 3, runs: 6 });
        assert_eq!(
            cells,
            vec![(0, 't'), (0, 'd'), (1, 't'), (1, 'd'), (2, 't'), (2, 'd')]
        );
    }

    #[test]
    fn reports_the_failing_cell() {
        let failure = sweep_result(4, &['x'], |p, _| {
            if p == 2 {
                Err("recovered world diverged".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(failure.point, 2);
        assert_eq!(failure.kind, 'x');
        assert!(failure.message.contains("diverged"));
    }

    #[test]
    fn zero_points_is_an_empty_sweep() {
        let stats = sweep_result(0, &['x'], |_, _| Err("never called".into())).unwrap();
        assert_eq!(stats.runs, 0);
    }
}
