//! The harness tested against itself: a planted bug must shrink to a
//! minimal case, regression cases must run before any generated case, and
//! a fixed seed must reproduce byte-identical case sequences.

use std::cell::RefCell;

use nexus_testkit::{shrink, CaseOrigin, Gen, Runner};

/// The planted bug: the property rejects any vector containing a byte
/// ≥ 200. Removal-only shrinking must reduce any failing vector to a
/// single offending element.
#[test]
fn shrinking_finds_minimal_case_for_planted_bug() {
    let failure = Runner::new("planted_bug")
        .cases(500)
        .run_result(
            |g| g.vec(0, 24, |g| g.u8()),
            |v| shrink::vec(v),
            |v| {
                if v.iter().any(|&b| b >= 200) {
                    Err("contains a big byte".into())
                } else {
                    Ok(())
                }
            },
        )
        .expect_err("500 cases of 0..24 random bytes must hit the planted bug");

    assert_eq!(failure.case.len(), 1, "minimal case is a single element: {:?}", failure.case);
    assert!(failure.case[0] >= 200);
    assert!(failure.original.len() >= failure.case.len());
    assert!(matches!(failure.origin, CaseOrigin::Generated(_, _)));
}

#[test]
fn regression_cases_run_before_any_generated_case() {
    let order: RefCell<Vec<&'static str>> = RefCell::new(Vec::new());
    let stats = Runner::new("replay_order")
        .cases(5)
        .regression(vec![0xAAu8])
        .regression(vec![0xBBu8])
        .run(
            |g| g.byte_vec(2, 8),
            shrink::none,
            |case| {
                // Regression cases are length 1, generated ones length ≥ 2.
                order.borrow_mut().push(if case.len() == 1 { "regression" } else { "generated" });
                Ok(())
            },
        );
    assert_eq!(stats.regressions_run, 2);
    assert_eq!(stats.cases_run, 5);
    let order = order.into_inner();
    assert_eq!(order.len(), 7);
    assert_eq!(&order[..2], &["regression", "regression"]);
    assert!(order[2..].iter().all(|&o| o == "generated"));
}

#[test]
fn failing_regression_case_reports_its_slot() {
    let failure = Runner::new("regression_fails")
        .regression(vec![1u8])
        .regression(vec![2u8, 2])
        .run_result(
            |g| g.byte_vec(0, 4),
            shrink::none,
            |case| if case.len() == 2 { Err("boom".into()) } else { Ok(()) },
        )
        .expect_err("second regression case must fail");
    assert_eq!(failure.origin, CaseOrigin::Regression(1));
    assert_eq!(failure.case, vec![2u8, 2]);
}

#[test]
fn fixed_seed_reproduces_identical_case_sequences() {
    let collect = |seed: u64| {
        let cases: RefCell<Vec<Vec<u8>>> = RefCell::new(Vec::new());
        Runner::new("determinism").cases(32).seed(seed).run(
            |g| g.byte_vec(0, 64),
            shrink::none,
            |case| {
                cases.borrow_mut().push(case.clone());
                Ok(())
            },
        );
        cases.into_inner()
    };
    let a = collect(0xDEAD_BEEF);
    let b = collect(0xDEAD_BEEF);
    assert_eq!(a, b, "same seed, byte-identical sequences");
    let c = collect(0xDEAD_BEF0);
    assert_ne!(a, c, "different seed, different sequences");
}

#[test]
fn shrinking_respects_step_budget() {
    // A property that fails on everything shrinks forever unless capped.
    let failure = Runner::new("budget")
        .cases(1)
        .max_shrink_steps(3)
        .run_result(
            |g| g.vec(16, 16, |g| g.u8()),
            |v: &Vec<u8>| if v.is_empty() { Vec::new() } else { vec![v[..v.len() - 1].to_vec()] },
            |_| Err("always fails".into()),
        )
        .expect_err("property always fails");
    assert_eq!(failure.shrink_steps, 3);
    assert_eq!(failure.case.len(), 13);
}

#[test]
fn gen_streams_are_independent_per_case_index() {
    // Distinct case indices must not produce overlapping prefixes.
    let mut g0 = Gen::new(7);
    let mut g1 = Gen::new(8);
    let a: Vec<u64> = (0..8).map(|_| g0.u64()).collect();
    let b: Vec<u64> = (0..8).map(|_| g1.u64()).collect();
    assert_ne!(a, b);
}
