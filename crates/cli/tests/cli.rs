//! Process-level integration tests: drive the real `nexus-cli` binary the
//! way a user would, across separate invocations (separate processes) and
//! separate homes (separate machines).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_nexus-cli")
}

struct Cli {
    home: PathBuf,
    store: PathBuf,
    user: String,
}

impl Cli {
    fn new(root: &Path, user: &str) -> Cli {
        Cli {
            home: root.join(format!("home-{user}")),
            store: root.join("store"),
            user: user.to_string(),
        }
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(bin())
            .arg("--home")
            .arg(&self.home)
            .arg("--store")
            .arg(&self.store)
            .arg("--user")
            .arg(&self.user)
            .args(args)
            .output()
            .expect("spawn nexus-cli")
    }

    fn ok(&self, args: &[&str]) -> String {
        let out = self.run(args);
        assert!(
            out.status.success(),
            "command {args:?} failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    }

    fn fails(&self, args: &[&str]) -> String {
        let out = self.run(args);
        assert!(!out.status.success(), "command {args:?} unexpectedly succeeded");
        String::from_utf8_lossy(&out.stderr).to_string()
    }

    fn pubkey(&self) -> String {
        self.ok(&["whoami"])
            .split_whitespace()
            .nth(1)
            .expect("pubkey")
            .to_string()
    }
}

fn test_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nexus-cli-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn volume_lifecycle_across_processes() {
    let root = test_root("lifecycle");
    let owen = Cli::new(&root, "owen");

    let out = owen.ok(&["init"]);
    assert!(out.contains("created volume"));

    // Each command below is a separate OS process against persisted state.
    owen.ok(&["mkdir", "docs/reports"]);
    let local = root.join("plan.txt");
    std::fs::write(&local, b"the plan\n").unwrap();
    owen.ok(&["put", local.to_str().unwrap(), "docs/reports/plan.txt"]);
    assert_eq!(owen.ok(&["cat", "docs/reports/plan.txt"]), "the plan\n");

    let listing = owen.ok(&["ls", "docs/reports"]);
    assert!(listing.contains("plan.txt"));

    owen.ok(&["mv", "docs/reports/plan.txt", "docs/plan-v2.txt"]);
    assert_eq!(owen.ok(&["cat", "docs/plan-v2.txt"]), "the plan\n");
    let stat = owen.ok(&["stat", "docs/plan-v2.txt"]);
    assert!(stat.contains("size 9 bytes"));

    owen.ok(&["rm", "docs/plan-v2.txt"]);
    owen.fails(&["cat", "docs/plan-v2.txt"]);
}

#[test]
fn sharing_and_revocation_between_machines() {
    let root = test_root("sharing");
    let owen = Cli::new(&root, "owen");
    let alice = Cli::new(&root, "alice");

    owen.ok(&["init"]);
    owen.ok(&["mkdir", "shared"]);
    let local = root.join("memo.txt");
    std::fs::write(&local, b"hello alice").unwrap();
    owen.ok(&["put", local.to_str().unwrap(), "shared/memo.txt"]);

    let owen_pk = owen.pubkey();
    let alice_pk = alice.pubkey();

    // Fig. 4, each phase a separate process. The offer's ECDH secret lives
    // in the enclave of one process, so `join` (which keeps the enclave
    // alive while polling) is the cross-process-safe recipient flow; here
    // we instead drive grant between alice's offer and accept by running
    // `join` in the background.
    let join_child = Command::new(bin())
        .arg("--home")
        .arg(&alice.home)
        .arg("--store")
        .arg(&alice.store)
        .arg("--user")
        .arg("alice")
        .args(["join", &owen_pk])
        .spawn()
        .expect("spawn join");
    // Give the joiner a moment to publish its offer.
    std::thread::sleep(std::time::Duration::from_millis(800));
    owen.ok(&["grant", "alice", &alice_pk]);
    owen.ok(&["setfacl", "shared", "alice", "rw"]);
    let join_out = join_child.wait_with_output().expect("join finishes");
    assert!(join_out.status.success(), "join failed");

    assert_eq!(alice.ok(&["cat", "shared/memo.txt"]), "hello alice");
    let users = owen.ok(&["users"]);
    assert!(users.contains("alice"));

    // Revocation: a single cheap command; alice loses access immediately.
    owen.ok(&["revoke", "shared", "alice"]);
    let err = alice.fails(&["cat", "shared/memo.txt"]);
    assert!(err.contains("access denied"), "got: {err}");
}

#[test]
fn merkle_volume_works_across_processes() {
    let root = test_root("merkle");
    let owen = Cli::new(&root, "owen");
    let out = owen.ok(&["init", "--merkle"]);
    assert!(out.contains("rollback protection: ON"));
    let local = root.join("f.txt");
    std::fs::write(&local, b"protected").unwrap();
    owen.ok(&["put", local.to_str().unwrap(), "f.txt"]);
    owen.ok(&["put", local.to_str().unwrap(), "g.txt"]);
    assert_eq!(owen.ok(&["cat", "f.txt"]), "protected");
    owen.ok(&["rm", "g.txt"]);
    let tree = owen.ok(&["tree"]);
    assert!(tree.contains("f.txt"));
    assert!(!tree.contains("g.txt"));
}

#[test]
fn unauthorized_user_cannot_mount() {
    let root = test_root("unauthorized");
    let owen = Cli::new(&root, "owen");
    owen.ok(&["init"]);
    // Eve copies owen's sealed rootkey but is on another "machine" (home):
    // the unseal itself fails.
    let eve = Cli::new(&root, "eve");
    eve.ok(&["whoami"]); // creates her home
    std::fs::copy(
        owen.home.join("rootkey-default.sealed"),
        eve.home.join("rootkey-default.sealed"),
    )
    .unwrap();
    let err = eve.fails(&["ls"]);
    assert!(
        err.contains("seal") || err.contains("platform") || err.contains("authentication"),
        "got: {err}"
    );
}

#[test]
fn help_and_bad_commands() {
    let root = test_root("help");
    let owen = Cli::new(&root, "owen");
    let out = owen.run(&["--help"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
    let err = owen.fails(&["frobnicate"]);
    assert!(err.contains("unknown command"));
    let err = owen.fails(&["init", "--bogus"]);
    assert!(err.contains("unknown init flag"));
}
