//! Persistent client-side state for the CLI.
//!
//! A real NEXUS deployment keeps three things on the user's local disk: the
//! identity keypair, the sealed volume rootkey, and (implicitly, in
//! silicon) the platform identity. The CLI persists stand-ins for all three
//! under `--home`, and publishes platform attestation records into the
//! shared store so separate invocations — even "different machines"
//! (different homes) — can verify each other's quotes, the way Intel's
//! provisioning database does.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use nexus_core::{SealedRootKey, UserKeys};
use nexus_crypto::ed25519::VerifyingKey;
use nexus_sgx::{AttestationService, Platform, PlatformId};
use nexus_storage::{DirBackend, StorageBackend};

/// Everything a CLI invocation needs to act as one user on one machine.
pub struct CliState {
    /// The simulated machine (same seed ⇒ same machine across invocations).
    pub platform: Platform,
    /// The user's identity keys.
    pub user: UserKeys,
    /// The shared untrusted store.
    pub store: Arc<DirBackend>,
    /// The attestation service, loaded from published platform records.
    pub ias: AttestationService,
    home: PathBuf,
}

fn read_or_create_seed(path: &Path) -> Result<[u8; 32], String> {
    if let Ok(bytes) = std::fs::read(path) {
        let arr: [u8; 32] = bytes
            .try_into()
            .map_err(|_| format!("{} is corrupt (expected 32 bytes)", path.display()))?;
        return Ok(arr);
    }
    let mut rng = nexus_crypto::rng::OsRandom::new();
    let mut seed = [0u8; 32];
    use nexus_crypto::rng::SecureRandom;
    rng.fill(&mut seed);
    std::fs::write(path, seed).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(seed)
}

impl CliState {
    /// Opens (creating on first use) the client state in `home`, against the
    /// shared store directory `store`.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating or reading the state files.
    pub fn open(home: &Path, store: &Path, user_name: &str) -> Result<CliState, String> {
        std::fs::create_dir_all(home).map_err(|e| format!("creating {}: {e}", home.display()))?;
        let platform_seed = read_or_create_seed(&home.join("platform.seed"))?;
        let user_seed = read_or_create_seed(&home.join("identity.seed"))?;
        let platform =
            Platform::from_identity_seed_persistent(&platform_seed, home.join("counters.bin"));
        let user = UserKeys::from_seed(user_name, &user_seed);
        let store: Arc<DirBackend> =
            Arc::new(DirBackend::open(store).map_err(|e| e.to_string())?);

        // Publish this platform's attestation record and load everyone's.
        let ias = AttestationService::new();
        publish_platform_record(store.as_ref(), &platform)?;
        load_platform_records(store.as_ref(), &ias)?;
        Ok(CliState { platform, user, store, ias, home: home.to_path_buf() })
    }

    /// Path of the saved sealed rootkey for `volume_hint` ("default" when a
    /// single volume is used).
    fn rootkey_path(&self, volume_hint: &str) -> PathBuf {
        self.home.join(format!("rootkey-{volume_hint}.sealed"))
    }

    /// Persists a sealed rootkey.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn save_rootkey(&self, hint: &str, sealed: &SealedRootKey) -> Result<(), String> {
        std::fs::write(self.rootkey_path(hint), &sealed.0)
            .map_err(|e| format!("saving rootkey: {e}"))
    }

    /// Loads a previously saved sealed rootkey.
    ///
    /// # Errors
    ///
    /// A readable message when no volume was initialized in this home.
    pub fn load_rootkey(&self, hint: &str) -> Result<SealedRootKey, String> {
        let path = self.rootkey_path(hint);
        let bytes = std::fs::read(&path).map_err(|_| {
            format!(
                "no sealed rootkey at {} — run `nexus-cli init` or `nexus-cli accept` first",
                path.display()
            )
        })?;
        Ok(SealedRootKey(bytes))
    }
}

const IAS_PREFIX: &str = "ias-record-";

fn publish_platform_record(store: &DirBackend, platform: &Platform) -> Result<(), String> {
    let id = platform.id();
    let mut record = Vec::with_capacity(48);
    record.extend_from_slice(&id.0);
    record.extend_from_slice(&platform.attestation_public_key().to_bytes());
    let name = format!("{IAS_PREFIX}{}", hex(&id.0));
    store.put(&name, &record).map_err(|e| e.to_string())
}

fn load_platform_records(store: &DirBackend, ias: &AttestationService) -> Result<(), String> {
    for name in store.list(IAS_PREFIX) {
        let record = store.get(&name).map_err(|e| e.to_string())?;
        if record.len() != 48 {
            return Err(format!("corrupt attestation record {name}"));
        }
        let mut id = [0u8; 16];
        id.copy_from_slice(&record[..16]);
        let key = VerifyingKey::from_bytes(&record[16..])
            .map_err(|_| format!("corrupt attestation key in {name}"))?;
        ias.register_platform_key(PlatformId(id), key);
    }
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nexus-cli-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_is_stable_across_opens() {
        let home = tmp("home");
        let store = tmp("store");
        let a = CliState::open(&home, &store, "owen").unwrap();
        let b = CliState::open(&home, &store, "owen").unwrap();
        assert_eq!(a.platform.id(), b.platform.id());
        assert_eq!(a.user.public_key(), b.user.public_key());
    }

    #[test]
    fn different_homes_are_different_machines() {
        let store = tmp("store2");
        let a = CliState::open(&tmp("home-a"), &store, "a").unwrap();
        let b = CliState::open(&tmp("home-b"), &store, "b").unwrap();
        assert_ne!(a.platform.id(), b.platform.id());
    }

    #[test]
    fn platform_records_cross_homes() {
        let store = tmp("store3");
        let a = CliState::open(&tmp("home-c"), &store, "a").unwrap();
        // b's IAS must know a's platform (published record).
        let b = CliState::open(&tmp("home-d"), &store, "b").unwrap();
        use nexus_sgx::{Enclave, EnclaveImage};
        let enclave = Enclave::create(&a.platform, &EnclaveImage::new(b"x".to_vec()), ());
        let quote = enclave.ecall(|_, env| env.quote(&[0u8; 64]));
        b.ias.verify(&quote).unwrap();
    }

    #[test]
    fn rootkey_roundtrip() {
        let state = CliState::open(&tmp("home-e"), &tmp("store4"), "a").unwrap();
        let sealed = SealedRootKey(vec![1, 2, 3]);
        state.save_rootkey("default", &sealed).unwrap();
        assert_eq!(state.load_rootkey("default").unwrap(), sealed);
        assert!(state.load_rootkey("missing").is_err());
    }
}
