//! `nexus-cli` — command-line client for NEXUS protected volumes.
//!
//! The store directory (`--store`) plays the untrusted file-sharing
//! service; the home directory (`--home`) holds this user's local state
//! (identity seed, platform seed, sealed rootkeys). Different homes against
//! the same store behave as different users on different machines, so the
//! full sharing protocol can be exercised from a shell:
//!
//! ```text
//! nexus-cli --home ~/.nexus-owen  --store /srv/share --user owen  init
//! nexus-cli --home ~/.nexus-owen  --store /srv/share --user owen  put ./plan.txt docs/plan.txt
//! nexus-cli --home ~/.nexus-alice --store /srv/share --user alice offer
//! nexus-cli --home ~/.nexus-owen  --store /srv/share --user owen  grant alice <alice-pubkey-hex>
//! nexus-cli --home ~/.nexus-owen  --store /srv/share --user owen  setfacl docs alice rw
//! nexus-cli --home ~/.nexus-alice --store /srv/share --user alice accept <owen-pubkey-hex>
//! nexus-cli --home ~/.nexus-alice --store /srv/share --user alice get docs/plan.txt
//! ```

mod state;

use std::path::PathBuf;
use std::process::ExitCode;

use nexus_core::{FileType, FsckMode, NexusConfig, NexusVolume, Rights, VolumeJoiner};
use nexus_crypto::ed25519::VerifyingKey;

use state::CliState;

const USAGE: &str = "\
nexus-cli — NEXUS protected volumes from the command line

USAGE:
    nexus-cli [--home DIR] [--store DIR] [--user NAME] <COMMAND> [ARGS]

VOLUME COMMANDS:
    init [--merkle]              create a volume owned by --user
                                 (--merkle: volume-wide rollback protection)
    info                         show volume id, users, and I/O statistics
    ls [PATH]                    list a directory
    tree [PATH]                  recursive listing
    mkdir PATH                   create a directory (with parents)
    put LOCAL REMOTE             encrypt and store a local file
    get REMOTE [LOCAL]           decrypt a file (to stdout or LOCAL)
    cat REMOTE                   decrypt a file to stdout
    rm PATH                      remove a file, empty directory, or symlink
    mv FROM TO                   rename/move
    ln TARGET LINKPATH           create a symlink
    stat PATH                    show type, size, and link count
    fsck [--deep]                verify the volume (--deep: decrypt all data)
    gc                           remove orphaned objects (owner only)

ACCESS CONTROL:
    users                        list authorized users
    whoami                       print this user's public key (hex)
    setfacl PATH USER RIGHTS     grant rights (r, w, or rw) on a directory
    getfacl PATH                 show a directory's ACL
    revoke PATH USER             remove a user's ACL entry (cheap!)
    revoke-user USER             remove a user from the volume entirely

SHARING (paper Fig. 4):
    offer                        publish this enclave's quoted exchange key
    grant USER PUBKEY_HEX        verify USER's offer, share the rootkey
    accept OWNER_PUBKEY_HEX      extract a granted rootkey and save it

DEFAULTS:
    --home  ./.nexus-home        --store ./.nexus-store        --user owner
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    home: PathBuf,
    store: PathBuf,
    user: String,
    command: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut home = PathBuf::from("./.nexus-home");
    let mut store = PathBuf::from("./.nexus-store");
    let mut user = "owner".to_string();
    let mut command = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--home" => home = PathBuf::from(args.next().ok_or("--home needs a value")?),
            "--store" => store = PathBuf::from(args.next().ok_or("--store needs a value")?),
            "--user" => user = args.next().ok_or("--user needs a value")?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                command.push(other.to_string());
                command.extend(args.by_ref());
            }
        }
    }
    Ok(Args { home, store, user, command })
}

fn parse_pubkey(hex_str: &str) -> Result<VerifyingKey, String> {
    if hex_str.len() != 64 {
        return Err("public key must be 64 hex characters".into());
    }
    let mut bytes = [0u8; 32];
    for i in 0..32 {
        bytes[i] = u8::from_str_radix(&hex_str[2 * i..2 * i + 2], 16)
            .map_err(|_| "invalid hex in public key")?;
    }
    VerifyingKey::from_bytes(&bytes).map_err(|_| "not a valid Ed25519 public key".into())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn parse_rights(s: &str) -> Result<Rights, String> {
    match s {
        "r" => Ok(Rights::READ),
        "w" => Ok(Rights::WRITE),
        "rw" | "wr" => Ok(Rights::RW),
        other => Err(format!("rights must be r, w, or rw (got {other:?})")),
    }
}

fn mount(state: &CliState) -> Result<NexusVolume, String> {
    let sealed = state.load_rootkey("default")?;
    let volume = NexusVolume::mount(
        &state.platform,
        state.store.clone(),
        &state.ias,
        &sealed,
        NexusConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    volume.authenticate(&state.user).map_err(|e| {
        format!("authentication failed ({e}); is this user authorized on the volume?")
    })?;
    Ok(volume)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let Some((cmd, rest)) = args.command.split_first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let state = CliState::open(&args.home, &args.store, &args.user)?;

    match (cmd.as_str(), rest) {
        ("init", flags) => {
            let merkle_freshness = flags.iter().any(|f| f == "--merkle");
            if let Some(bad) = flags.iter().find(|f| *f != "--merkle") {
                return Err(format!("unknown init flag {bad:?}"));
            }
            let config = NexusConfig { merkle_freshness, ..Default::default() };
            let (volume, sealed) = NexusVolume::create(
                &state.platform,
                state.store.clone(),
                &state.ias,
                &state.user,
                config,
            )
            .map_err(|e| e.to_string())?;
            state.save_rootkey("default", &sealed)?;
            println!("created volume {}", volume.volume_id());
            if merkle_freshness {
                println!("volume-wide rollback protection: ON (freshness manifest)");
            }
            println!("owner: {} ({})", args.user, hex(&state.user.public_key().to_bytes()));
            println!("sealed rootkey saved under {}", args.home.display());
        }
        ("whoami", []) => {
            println!("{} {}", args.user, hex(&state.user.public_key().to_bytes()));
        }
        ("info", []) => {
            let volume = mount(&state)?;
            println!("volume:  {}", volume.volume_id());
            println!("users:   {}", volume.users().map_err(|e| e.to_string())?.join(", "));
            let stats = volume.io_stats();
            println!(
                "i/o:     {} reads / {} writes / {} bytes stored",
                stats.reads, stats.writes, stats.bytes_written
            );
            let enclave = volume.enclave().stats();
            println!("enclave: {} ecalls, {} ocalls", enclave.ecalls(), enclave.ocalls());
        }
        ("ls", rest) => {
            let path = rest.first().map(String::as_str).unwrap_or("");
            let volume = mount(&state)?;
            for row in volume.list_dir(path).map_err(|e| e.to_string())? {
                let tag = match row.kind {
                    FileType::Directory => "d",
                    FileType::File => "-",
                    FileType::Symlink => "l",
                };
                println!("{tag} {}", row.name);
            }
        }
        ("tree", rest) => {
            let root = rest.first().map(String::as_str).unwrap_or("");
            let volume = mount(&state)?;
            print_tree(&volume, root, 0)?;
        }
        ("mkdir", [path]) => {
            mount(&state)?.mkdir_all(path).map_err(|e| e.to_string())?;
            println!("created {path}/");
        }
        ("put", [local, remote]) => {
            let data = std::fs::read(local).map_err(|e| format!("reading {local}: {e}"))?;
            mount(&state)?.write_file(remote, &data).map_err(|e| e.to_string())?;
            println!("stored {} bytes at {remote}", data.len());
        }
        ("get", [remote, localrest @ ..]) => {
            let data = mount(&state)?.read_file(remote).map_err(|e| e.to_string())?;
            match localrest.first() {
                Some(local) => {
                    std::fs::write(local, &data).map_err(|e| format!("writing {local}: {e}"))?;
                    println!("wrote {} bytes to {local}", data.len());
                }
                None => {
                    use std::io::Write;
                    std::io::stdout().write_all(&data).map_err(|e| e.to_string())?;
                }
            }
        }
        ("cat", [remote]) => {
            let data = mount(&state)?.read_file(remote).map_err(|e| e.to_string())?;
            use std::io::Write;
            std::io::stdout().write_all(&data).map_err(|e| e.to_string())?;
        }
        ("rm", [path]) => {
            mount(&state)?.remove(path).map_err(|e| e.to_string())?;
            println!("removed {path}");
        }
        ("mv", [from, to]) => {
            mount(&state)?.rename(from, to).map_err(|e| e.to_string())?;
            println!("moved {from} -> {to}");
        }
        ("ln", [target, linkpath]) => {
            mount(&state)?.symlink(target, linkpath).map_err(|e| e.to_string())?;
            println!("linked {linkpath} -> {target}");
        }
        ("stat", [path]) => {
            let info = mount(&state)?.lookup(path).map_err(|e| e.to_string())?;
            let kind = match info.kind {
                FileType::Directory => "directory",
                FileType::File => "file",
                FileType::Symlink => "symlink",
            };
            println!("{path}: {kind}, size {} bytes, nlink {}", info.size, info.nlink);
            println!("metadata object: {}", info.uuid);
        }
        ("fsck", flags) => {
            let mode = if flags.iter().any(|f| f == "--deep") {
                FsckMode::Deep
            } else {
                FsckMode::Metadata
            };
            let report = mount(&state)?.fsck(mode).map_err(|e| e.to_string())?;
            println!(
                "verified {} directories, {} buckets, {} files, {} symlinks",
                report.directories, report.buckets, report.files, report.symlinks
            );
            if mode == FsckMode::Deep {
                println!(
                    "decrypted {} chunks / {} bytes of file data",
                    report.chunks_verified, report.bytes_verified
                );
            }
            if !report.orphans.is_empty() {
                println!("{} orphaned object(s) (run `gc` to reclaim):", report.orphans.len());
                for o in &report.orphans {
                    println!("  {o}");
                }
            }
            if report.is_clean() {
                println!("volume is clean");
            } else {
                for (path, err) in &report.errors {
                    eprintln!("ERROR at {path}: {err}");
                }
                return Err(format!("{} integrity problem(s) found", report.errors.len()));
            }
        }
        ("gc", []) => {
            let removed = mount(&state)?.gc().map_err(|e| e.to_string())?;
            println!("reclaimed {removed} orphaned object(s)");
        }
        ("users", []) => {
            for user in mount(&state)?.users().map_err(|e| e.to_string())? {
                println!("{user}");
            }
        }
        ("setfacl", [path, user, rights]) => {
            let rights = parse_rights(rights)?;
            mount(&state)?.set_acl(path, user, rights).map_err(|e| e.to_string())?;
            println!("granted {rights} on {path}/ to {user}");
        }
        ("getfacl", [path]) => {
            for (user, rights) in mount(&state)?.acl_entries(path).map_err(|e| e.to_string())? {
                println!("{user}: {rights}");
            }
        }
        ("revoke", [path, user]) => {
            mount(&state)?.revoke_acl(path, user).map_err(|e| e.to_string())?;
            println!("revoked {user} from {path}/ (one metadata update)");
        }
        ("revoke-user", [user]) => {
            mount(&state)?.revoke_user(user).map_err(|e| e.to_string())?;
            println!("removed {user} from the volume");
        }
        ("offer", []) => {
            let joiner = VolumeJoiner::new(&state.platform, state.store.clone());
            joiner.publish_offer(&state.user).map_err(|e| e.to_string())?;
            // Persist nothing: the offer's ECDH secret lives in this
            // enclave instance, so accept must re-derive; see `accept`.
            println!("offer published for {}", args.user);
            println!("your public key: {}", hex(&state.user.public_key().to_bytes()));
            println!("note: run `accept` from the SAME home after the owner grants");
        }
        ("grant", [user, pubkey_hex]) => {
            let peer_key = parse_pubkey(pubkey_hex)?;
            let volume = mount(&state)?;
            volume
                .grant_access(&state.user, user, &peer_key)
                .map_err(|e| e.to_string())?;
            println!("rootkey granted to {user}; now `setfacl` directories for them");
        }
        ("accept", [owner_pubkey_hex]) => {
            let owner_key = parse_pubkey(owner_pubkey_hex)?;
            // The offer and the extraction must use the same enclave ECDH
            // key. The joiner regenerates its keypair per process, so the
            // CLI publishes a fresh offer and requires a re-grant — unless
            // the grant is already extractable by this fresh offer cycle.
            let joiner = VolumeJoiner::new(&state.platform, state.store.clone());
            match joiner.accept_grant(&state.user, &owner_key) {
                Ok(sealed) => {
                    state.save_rootkey("default", &sealed)?;
                    println!("rootkey accepted and sealed to this machine");
                }
                Err(e) => {
                    // Republish so the owner can re-grant against the
                    // current enclave instance.
                    joiner.publish_offer(&state.user).map_err(|e2| e2.to_string())?;
                    return Err(format!(
                        "{e}\na fresh offer was republished; ask the owner to run `grant` again, \
                         then retry `accept` in the same session or use `join` below"
                    ));
                }
            }
        }
        ("join", [owner_pubkey_hex]) => {
            // One-shot interactive join: publish an offer and wait for the
            // owner's grant to appear on the store, then extract.
            let owner_key = parse_pubkey(owner_pubkey_hex)?;
            let joiner = VolumeJoiner::new(&state.platform, state.store.clone());
            joiner.publish_offer(&state.user).map_err(|e| e.to_string())?;
            println!(
                "offer published; waiting for the owner to run `grant {} {}` ...",
                args.user,
                hex(&state.user.public_key().to_bytes())
            );
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
            loop {
                match joiner.accept_grant(&state.user, &owner_key) {
                    Ok(sealed) => {
                        state.save_rootkey("default", &sealed)?;
                        println!("rootkey accepted and sealed to this machine");
                        break;
                    }
                    Err(_) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(std::time::Duration::from_millis(500));
                    }
                    Err(e) => return Err(format!("timed out waiting for grant: {e}")),
                }
            }
        }
        (other, _) => {
            return Err(format!(
                "unknown command or wrong arguments: {other:?}\n\n{USAGE}"
            ))
        }
    }
    Ok(())
}

fn print_tree(volume: &NexusVolume, path: &str, depth: usize) -> Result<(), String> {
    let rows = volume.list_dir(path).map_err(|e| e.to_string())?;
    for row in rows {
        let indent = "  ".repeat(depth);
        let full = if path.is_empty() {
            row.name.clone()
        } else {
            format!("{path}/{}", row.name)
        };
        match row.kind {
            FileType::Directory => {
                println!("{indent}{}/", row.name);
                print_tree(volume, &full, depth + 1)?;
            }
            FileType::File => {
                let size = volume.lookup(&full).map(|i| i.size).unwrap_or(0);
                println!("{indent}{} ({size} bytes)", row.name);
            }
            FileType::Symlink => {
                let target = volume.readlink(&full).unwrap_or_default();
                println!("{indent}{} -> {target}", row.name);
            }
        }
    }
    Ok(())
}
