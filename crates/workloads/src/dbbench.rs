//! Database workloads (paper Table II).
//!
//! The paper runs the stock `db_bench` tools of LevelDB and SQLite on top
//! of the mounted filesystem; the databases themselves are just I/O pattern
//! generators (16-byte keys, 100-byte values, 4 MB of write buffer). This
//! module reproduces those patterns over a [`BenchFs`]:
//!
//! - [`LevelDbSim`] models an LSM engine: an in-memory memtable flushed to
//!   immutable table files at the write-buffer threshold, a synchronous WAL
//!   for `*sync` modes, and compaction rewrites for random-order fills;
//! - [`SqliteSim`] models a paged B-tree file: the database is a set of
//!   fixed-size page groups; transactions rewrite the journal plus the
//!   groups they touch, and `*sync` modes commit every operation.

use std::collections::HashSet;

use nexus_crypto::rng::{SecureRandom, SeededRandom};

use crate::bench_fs::{measure, BenchFs, Result, Sample};

/// Shared workload parameters (defaults follow the paper: 16 B keys,
/// 100 B values, 4 MB write buffer).
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Entries for asynchronous fill/read modes.
    pub entries: usize,
    /// Key size in bytes.
    pub key_size: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Memtable / transaction buffer size.
    pub write_buffer: usize,
    /// Operations for synchronous modes (each is a full commit).
    pub sync_ops: usize,
    /// Lookups for `readrandom`.
    pub random_reads: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            entries: 40_000,
            key_size: 16,
            value_size: 100,
            write_buffer: 4 * 1024 * 1024,
            sync_ops: 400,
            random_reads: 2_000,
        }
    }
}

impl DbConfig {
    fn entry_size(&self) -> usize {
        self.key_size + self.value_size
    }
}

/// How a measurement should be reported, mirroring Table II's mixed units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DbMetric {
    /// Payload megabytes per second (higher is better).
    MbPerSec(f64),
    /// Milliseconds per operation (lower is better).
    MsPerOp(f64),
    /// Microseconds per operation (lower is better).
    UsPerOp(f64),
}

impl std::fmt::Display for DbMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbMetric::MbPerSec(v) => write!(f, "{v:.1} MB/s"),
            DbMetric::MsPerOp(v) => write!(f, "{v:.2} ms/op"),
            DbMetric::UsPerOp(v) => write!(f, "{v:.2} \u{b5}s/op"),
        }
    }
}

impl DbMetric {
    /// Overhead of `self` relative to `baseline` expressed as the paper's
    /// ratio column (baseline/nexus for throughput, nexus/baseline for
    /// latency — both ">1 means NEXUS slower").
    pub fn overhead_vs(&self, baseline: &DbMetric) -> f64 {
        match (self, baseline) {
            (DbMetric::MbPerSec(n), DbMetric::MbPerSec(b)) => b / n,
            (DbMetric::MsPerOp(n), DbMetric::MsPerOp(b)) => n / b,
            (DbMetric::UsPerOp(n), DbMetric::UsPerOp(b)) => n / b,
            _ => f64::NAN,
        }
    }
}

/// One benchmark row.
#[derive(Debug, Clone)]
pub struct DbResult {
    /// Operation name as in Table II.
    pub op: &'static str,
    /// Reported metric.
    pub metric: DbMetric,
    /// Raw timing sample.
    pub sample: Sample,
}

fn mb(bytes: u64, sample: &Sample) -> DbMetric {
    // Workload phases that never touch storage (batch commits) are bounded
    // by real memory speed rather than simulated I/O.
    let elapsed = sample.total().max(sample.real);
    DbMetric::MbPerSec(bytes as f64 / 1e6 / elapsed.as_secs_f64().max(1e-9))
}

fn ms_per_op(ops: usize, sample: &Sample) -> DbMetric {
    DbMetric::MsPerOp(sample.total().as_secs_f64() * 1e3 / ops.max(1) as f64)
}

fn us_per_op(ops: usize, sample: &Sample) -> DbMetric {
    DbMetric::UsPerOp(sample.total().as_secs_f64() * 1e6 / ops.max(1) as f64)
}

// ---------------------------------------------------------------------------
// LevelDB-style LSM engine.
// ---------------------------------------------------------------------------

/// LSM-style engine state over a benchmark filesystem.
pub struct LevelDbSim<'f> {
    fs: &'f dyn BenchFs,
    config: DbConfig,
    dir: String,
    sst_count: usize,
    rng: SeededRandom,
    /// OS page-cache model: (file, 1 MB-aligned offset) regions whose
    /// *plaintext* is resident after a prior read. On the real prototype
    /// the kernel page cache holds decrypted data after NEXUS's first
    /// fetch, so repeated block reads are memory-speed for both systems.
    page_cache: HashSet<(String, u64)>,
}

impl<'f> LevelDbSim<'f> {
    /// Creates the database directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn create(fs: &'f dyn BenchFs, config: DbConfig, dir: &str) -> Result<LevelDbSim<'f>> {
        fs.mkdir_all(dir)?;
        Ok(LevelDbSim {
            fs,
            config,
            dir: dir.to_string(),
            sst_count: 0,
            rng: SeededRandom::new(0xDB),
            page_cache: HashSet::new(),
        })
    }

    fn flush_sst(&mut self, bytes: usize) -> Result<()> {
        let path = format!("{}/{:06}.ldb", self.dir, self.sst_count);
        self.sst_count += 1;
        self.fs.write_file(&path, &vec![0x55u8; bytes])
    }

    fn fill(&mut self, entries: usize, value_size: usize, compaction_ratio: f64) -> Result<(u64, Sample)> {
        let entry = self.config.key_size + value_size;
        let total = (entries * entry) as u64;
        let per_flush = (self.config.write_buffer / entry).max(1);
        let sample = {
            let fs = self.fs;
            let me = &mut *self;
            measure(fs, move || {
                let mut buffered = 0usize;
                let mut since_compaction = 0usize;
                for _ in 0..entries {
                    buffered += 1;
                    if buffered >= per_flush {
                        me.flush_sst(buffered * entry)?;
                        since_compaction += 1;
                        buffered = 0;
                        // Random-order fills overlap key ranges: every few
                        // flushes, compaction re-reads and rewrites them.
                        if compaction_ratio > 0.0 && since_compaction >= 4 {
                            let rewrite = (4.0 * compaction_ratio).ceil() as usize;
                            for k in 0..rewrite {
                                let victim = me.sst_count.saturating_sub(1 + k);
                                let path = format!("{}/{victim:06}.ldb", me.dir, victim = victim);
                                let data = me.fs.read_file(&path)?;
                                me.fs.write_file(&path, &data)?;
                            }
                            since_compaction = 0;
                        }
                    }
                }
                if buffered > 0 {
                    me.flush_sst(buffered * entry)?;
                }
                Ok(())
            })?
        };
        Ok((total, sample))
    }

    /// `fillseq`: sequential asynchronous fill.
    pub fn fillseq(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, self.config.value_size, 0.0)?;
        Ok(DbResult { op: "fillseq", metric: mb(bytes, &sample), sample })
    }

    /// `fillsync`: every write commits through the write-ahead log — the
    /// log file grows by one entry and is flushed (AFS: stored) per op.
    pub fn fillsync(&mut self) -> Result<DbResult> {
        let ops = self.config.sync_ops;
        let entry = self.config.entry_size();
        let fs = self.fs;
        let dir = self.dir.clone();
        let sample = measure(fs, || {
            let mut wal = Vec::new();
            for _ in 0..ops {
                wal.extend_from_slice(&vec![0x77u8; entry]);
                fs.write_file(&format!("{dir}/LOG.wal"), &wal)?;
            }
            Ok(())
        })?;
        Ok(DbResult { op: "fillsync", metric: ms_per_op(ops, &sample), sample })
    }

    /// `fillrandom`: random-order fill with compaction traffic.
    pub fn fillrandom(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, self.config.value_size, 0.5)?;
        Ok(DbResult { op: "fillrandom", metric: mb(bytes, &sample), sample })
    }

    /// `overwrite`: random overwrite of the existing key space (heavier
    /// compaction).
    pub fn overwrite(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, self.config.value_size, 0.75)?;
        Ok(DbResult { op: "overwrite", metric: mb(bytes, &sample), sample })
    }

    /// `fill100K`: sequential fill of 100 kB values.
    pub fn fill100k(&mut self) -> Result<DbResult> {
        let entries = (self.config.entries / 100).max(8);
        let (bytes, sample) = self.fill(entries, 100_000, 0.0)?;
        Ok(DbResult { op: "fill100K", metric: mb(bytes, &sample), sample })
    }

    fn sst_files(&self) -> Result<Vec<String>> {
        let mut files = self.fs.list_dir(&self.dir)?;
        files.retain(|f| f.ends_with(".ldb"));
        files.sort();
        Ok(files)
    }

    /// `readseq`: scan every table file in order.
    pub fn readseq(&mut self) -> Result<DbResult> {
        self.fs.flush_caches();
        let files = self.sst_files()?;
        let fs = self.fs;
        let dir = self.dir.clone();
        let mut bytes = 0u64;
        let sample = measure(fs, || {
            for f in &files {
                bytes += fs.read_file(&format!("{dir}/{f}"))?.len() as u64;
            }
            Ok(())
        })?;
        // Sequential scans leave decrypted pages resident.
        for f in &files {
            let path = format!("{}/{f}", self.dir);
            let size = self.fs.stat_size(&path)?;
            for region in 0..size.div_ceil(1024 * 1024) {
                self.page_cache.insert((path.clone(), region * 1024 * 1024));
            }
        }
        Ok(DbResult { op: "readseq", metric: mb(bytes, &sample), sample })
    }

    /// `readreverse`: scan table files newest-first.
    pub fn readreverse(&mut self) -> Result<DbResult> {
        self.fs.flush_caches();
        let mut files = self.sst_files()?;
        files.reverse();
        let fs = self.fs;
        let dir = self.dir.clone();
        let mut bytes = 0u64;
        let sample = measure(fs, || {
            for f in &files {
                bytes += fs.read_file(&format!("{dir}/{f}"))?.len() as u64;
            }
            Ok(())
        })?;
        Ok(DbResult { op: "readreverse", metric: mb(bytes, &sample), sample })
    }

    /// `readrandom`: point lookups, one 4 kB block read each, served
    /// through the page-cache model (db_bench runs its read phases against
    /// a database it just wrote/scanned, so most blocks are resident; cold
    /// blocks cost NEXUS a chunk decryption).
    pub fn readrandom(&mut self) -> Result<DbResult> {
        let files = self.sst_files()?;
        if files.is_empty() {
            return Err(crate::bench_fs::WorkloadError("readrandom before fill".into()));
        }
        let ops = self.config.random_reads;
        let picks: Vec<(String, u64)> = (0..ops)
            .map(|_| {
                let f = files[self.rng.usize_below(files.len())].clone();
                (format!("{}/{f}", self.dir), self.rng.u64_below(4096) * 4096)
            })
            .collect();
        let fs = self.fs;
        let page_cache = &mut self.page_cache;
        let sample = measure(fs, || {
            for (path, offset) in &picks {
                let size = fs.stat_size(path)?;
                let off = *offset % size.saturating_sub(4096).max(1);
                let region = (off >> 20) << 20;
                if page_cache.insert((path.clone(), region)) {
                    // Cold region: the OS reads it through the FS (NEXUS
                    // decrypts the covering chunk).
                    let len = (size - region).min(1024 * 1024);
                    let _ = fs.read_range(path, region, len)?;
                }
                // Warm blocks are memory-speed for both systems.
            }
            Ok(())
        })?;
        Ok(DbResult { op: "readrandom", metric: us_per_op(ops, &sample), sample })
    }
}

// ---------------------------------------------------------------------------
// SQLite-style paged engine.
// ---------------------------------------------------------------------------

/// Paged single-database-file engine over a benchmark filesystem.
pub struct SqliteSim<'f> {
    fs: &'f dyn BenchFs,
    config: DbConfig,
    dir: String,
    /// Page-group size (contiguous pages rewritten together on commit).
    group_size: usize,
    groups: usize,
    rng: SeededRandom,
}

impl<'f> SqliteSim<'f> {
    /// Creates the database directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn create(fs: &'f dyn BenchFs, config: DbConfig, dir: &str) -> Result<SqliteSim<'f>> {
        fs.mkdir_all(dir)?;
        Ok(SqliteSim {
            fs,
            config,
            dir: dir.to_string(),
            group_size: 256 * 1024,
            groups: 0,
            rng: SeededRandom::new(0x501),
        })
    }

    fn group_path(&self, k: usize) -> String {
        format!("{}/pg-{k:05}", self.dir)
    }

    /// Commit model, following what SQLite actually forces to storage:
    ///
    /// - **batch** transactions (one giant txn): nothing reaches the server
    ///   before close — AFS buffers writes locally, so the measured phase is
    ///   memory-speed for both systems (the paper's 70 MB/s exceeds its
    ///   network bandwidth for exactly this reason);
    /// - **async** per-txn commits flush the dirty 256 kB page groups but
    ///   never the rollback journal (it is deleted before it would sync);
    /// - **sync** commits force the journal plus the dirty 16 kB page run
    ///   out on every operation.
    fn fill(&mut self, entries: usize, per_txn: usize, random: bool) -> Result<(u64, Sample)> {
        let entry = self.config.entry_size();
        let total = (entries * entry) as u64;
        let sample = {
            let fs = self.fs;
            let me = &mut *self;
            measure(fs, move || {
                if per_txn >= entries {
                    // Batch: local buffering only; storage sees it at close.
                    let mut buffer = Vec::with_capacity(total as usize);
                    for i in 0..entries {
                        buffer.extend_from_slice(&[(i % 251) as u8; 8]);
                        buffer.resize((i + 1) * entry, 0x42);
                    }
                    std::hint::black_box(&buffer);
                    return Ok(());
                }
                if per_txn == 1 {
                    // Sync: journal + dirty page run, every operation.
                    const PAGE_RUN: usize = 16 * 1024;
                    for i in 0..entries {
                        fs.write_file(
                            &format!("{}/journal", me.dir),
                            &vec![0x4au8; 512 + entry],
                        )?;
                        let page = if random {
                            me.rng.usize_below(64)
                        } else {
                            (i * entry) / PAGE_RUN % 64
                        };
                        fs.write_file(&format!("{}/run-{page:03}", me.dir), &vec![0x42u8; PAGE_RUN])?;
                    }
                    return Ok(());
                }
                // Async: flush dirty 256 kB groups per transaction.
                let group_size = me.group_size;
                let entries_per_group = (group_size / entry).max(1);
                let mut done = 0usize;
                while done < entries {
                    let txn = per_txn.min(entries - done);
                    done += txn;
                    let span = txn.div_ceil(entries_per_group).max(1);
                    let groups: Vec<usize> = if random {
                        let hi = (done / entries_per_group).max(1);
                        (0..span).map(|_| me.rng.usize_below(hi)).collect()
                    } else {
                        let first = (done - txn) / entries_per_group;
                        (first..first + span).collect()
                    };
                    for &group in &groups {
                        me.groups = me.groups.max(group + 1);
                        fs.write_file(&me.group_path(group), &vec![0x42u8; group_size])?;
                    }
                }
                Ok(())
            })?
        };
        Ok((total, sample))
    }

    /// `fillseq`: sequential inserts, default transaction batching.
    pub fn fillseq(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, 1000, false)?;
        Ok(DbResult { op: "fillseq", metric: mb(bytes, &sample), sample })
    }

    /// `fillseqsync`: one insert per committed transaction.
    pub fn fillseqsync(&mut self) -> Result<DbResult> {
        let ops = self.config.sync_ops;
        let (_, sample) = self.fill(ops, 1, false)?;
        Ok(DbResult { op: "fillseqsync", metric: ms_per_op(ops, &sample), sample })
    }

    /// `fillseqbatch`: one giant transaction.
    pub fn fillseqbatch(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, self.config.entries, false)?;
        Ok(DbResult { op: "fillseqbatch", metric: mb(bytes, &sample), sample })
    }

    /// `fillrandom`: random page groups, default batching.
    pub fn fillrandom(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, 1000, true)?;
        Ok(DbResult { op: "fillrandom", metric: mb(bytes, &sample), sample })
    }

    /// `fillrandsync`: random pages, one insert per commit.
    pub fn fillrandsync(&mut self) -> Result<DbResult> {
        let ops = self.config.sync_ops;
        let (_, sample) = self.fill(ops, 1, true)?;
        Ok(DbResult { op: "fillrandsync", metric: ms_per_op(ops, &sample), sample })
    }

    /// `fillrandbatch`: random pages, one giant transaction.
    pub fn fillrandbatch(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, self.config.entries, true)?;
        Ok(DbResult { op: "fillrandbatch", metric: mb(bytes, &sample), sample })
    }

    /// `overwrite`: random rewrites of the existing key space.
    pub fn overwrite(&mut self) -> Result<DbResult> {
        let (bytes, sample) = self.fill(self.config.entries, 1000, true)?;
        Ok(DbResult { op: "overwrite", metric: mb(bytes, &sample), sample })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TestRig;

    fn tiny() -> DbConfig {
        DbConfig { entries: 2_000, sync_ops: 20, random_reads: 50, ..Default::default() }
    }

    #[test]
    fn leveldb_all_ops_run_on_nexus() {
        let rig = TestRig::fast();
        let fs = rig.nexus_fs();
        let mut db = LevelDbSim::create(&fs, tiny(), "ldb").unwrap();
        db.fillseq().unwrap();
        db.fillsync().unwrap();
        db.fillrandom().unwrap();
        db.overwrite().unwrap();
        db.readseq().unwrap();
        db.readreverse().unwrap();
        db.readrandom().unwrap();
        db.fill100k().unwrap();
    }

    #[test]
    fn sqlite_all_ops_run_on_baseline() {
        let rig = TestRig::fast();
        let fs = rig.plain_afs();
        let mut db = SqliteSim::create(&fs, tiny(), "sq").unwrap();
        db.fillseq().unwrap();
        db.fillseqsync().unwrap();
        db.fillseqbatch().unwrap();
        db.fillrandom().unwrap();
        db.fillrandsync().unwrap();
        db.fillrandbatch().unwrap();
        db.overwrite().unwrap();
    }

    #[test]
    fn sync_ops_cost_more_per_op_than_batched() {
        let rig = TestRig::default_latency();
        let fs = rig.plain_afs();
        let mut db = SqliteSim::create(&fs, tiny(), "sq").unwrap();
        let batch = db.fillseqbatch().unwrap();
        let sync = db.fillseqsync().unwrap();
        let batch_per_op = batch.sample.total().as_secs_f64() / 2_000.0;
        let sync_per_op = sync.sample.total().as_secs_f64() / 20.0;
        assert!(sync_per_op > batch_per_op * 5.0);
    }

    #[test]
    fn metric_overhead_math() {
        let a = DbMetric::MbPerSec(10.0);
        let b = DbMetric::MbPerSec(5.0);
        assert!((b.overhead_vs(&a) - 2.0).abs() < 1e-9);
        let x = DbMetric::MsPerOp(4.0);
        let y = DbMetric::MsPerOp(2.0);
        assert!((x.overhead_vs(&y) - 2.0).abs() < 1e-9);
    }
}
