//! Synthetic source-tree generation (paper Fig. 5c).
//!
//! The paper clones redis (618 files), julia (1096), and nodejs (19912 —
//! depth up to 13, top directories of 1458/762/783 entries). Real clones
//! are unavailable offline, so this module generates deterministic trees
//! with exactly those published shape parameters; clone cost in the
//! evaluation is file/directory creation volume and hierarchy shape, which
//! these reproduce.

use nexus_crypto::rng::{SecureRandom, SeededRandom};

use crate::bench_fs::{measure, BenchFs, Result, Sample};

/// Shape parameters of one repository.
#[derive(Debug, Clone)]
pub struct RepoProfile {
    /// Repository name.
    pub name: &'static str,
    /// Total number of files.
    pub files: usize,
    /// Maximum directory depth.
    pub max_depth: usize,
    /// Sizes (entry counts) of the largest directories, placed first.
    pub big_dirs: &'static [usize],
    /// Mean file size in bytes.
    pub mean_file_size: usize,
    /// Deterministic seed.
    pub seed: u64,
}

/// The redis profile (618 files). Mean file size reflects a real clone's
/// working tree *plus* its share of `.git` pack data (~45 MB total).
pub const REDIS: RepoProfile = RepoProfile {
    name: "redis",
    files: 618,
    max_depth: 6,
    big_dirs: &[120, 80],
    mean_file_size: 72 * 1024,
    seed: 0xED15,
};

/// The julia profile (1096 files).
pub const JULIA: RepoProfile = RepoProfile {
    name: "julia",
    files: 1096,
    max_depth: 8,
    big_dirs: &[200, 150],
    mean_file_size: 53 * 1024,
    seed: 0x10_11A,
};

/// The nodejs profile (19912 files, depth 13, top dirs 1458/762/783).
pub const NODEJS: RepoProfile = RepoProfile {
    name: "nodejs",
    files: 19912,
    max_depth: 13,
    big_dirs: &[1458, 783, 762],
    mean_file_size: 45 * 1024,
    seed: 0x480DE,
};

/// One file in a generated tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeFile {
    /// Path relative to the repo root.
    pub path: String,
    /// File size in bytes.
    pub size: usize,
}

/// A generated source tree: directories (parents before children) and files.
#[derive(Debug, Clone, Default)]
pub struct Tree {
    /// Directories in creation order.
    pub dirs: Vec<String>,
    /// Files with sizes.
    pub files: Vec<TreeFile>,
}

impl Tree {
    /// Total plaintext bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size as u64).sum()
    }
}

/// Generates the tree for `profile`, optionally scaling file sizes by
/// `size_scale` (file *counts* are never scaled — they drive the metadata
/// costs the figure is about).
pub fn generate_tree(profile: &RepoProfile, size_scale: f64) -> Tree {
    let mut rng = SeededRandom::new(profile.seed);
    let mut tree = Tree::default();

    // Directory skeleton: a chain establishing max depth, plus a fanout of
    // package-style directories at shallow depths.
    let root = profile.name.to_string();
    tree.dirs.push(root.clone());
    let mut chain = root.clone();
    for d in 0..profile.max_depth.saturating_sub(1) {
        chain = format!("{chain}/deep{d}");
        tree.dirs.push(chain.clone());
    }
    let mut normal_dirs = vec![root.clone(), chain];
    let extra_dirs = (profile.files / 24).max(2);
    for i in 0..extra_dirs {
        let parent = normal_dirs[rng.usize_below(normal_dirs.len().min(8))].clone();
        let dir = format!("{parent}/pkg{i:04}");
        tree.dirs.push(dir.clone());
        normal_dirs.push(dir);
    }

    // Big directories get their published entry counts.
    let mut remaining = profile.files;
    for (i, &count) in profile.big_dirs.iter().enumerate() {
        let dir = format!("{root}/big{i}");
        tree.dirs.push(dir.clone());
        let take = count.min(remaining);
        for j in 0..take {
            let size = file_size(&mut rng, profile.mean_file_size, size_scale);
            tree.files.push(TreeFile { path: format!("{dir}/file{j:05}.c"), size });
        }
        remaining -= take;
    }

    // The rest spread across normal directories.
    let mut i = 0usize;
    while remaining > 0 {
        let dir = &normal_dirs[rng.usize_below(normal_dirs.len())];
        let size = file_size(&mut rng, profile.mean_file_size, size_scale);
        tree.files.push(TreeFile { path: format!("{dir}/src{i:06}.c"), size });
        i += 1;
        remaining -= 1;
    }
    tree
}

fn file_size(rng: &mut SeededRandom, mean: usize, scale: f64) -> usize {
    // Skewed small-file distribution typical of source trees.
    let factor: f64 = rng.f64_range(0.1, 3.0).powi(2);
    ((mean as f64 * factor * scale / 3.0) as usize).max(16)
}

/// Replays a clone: creates every directory and writes every file.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn clone_repo(fs: &dyn BenchFs, tree: &Tree) -> Result<Sample> {
    measure(fs, || {
        for dir in &tree.dirs {
            fs.mkdir_all(dir)?;
        }
        for file in &tree.files {
            let data = vec![0x2a; file.size];
            fs.write_file(&file.path, &data)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TestRig;

    #[test]
    fn profiles_have_published_file_counts() {
        for (profile, count) in [(&REDIS, 618), (&JULIA, 1096), (&NODEJS, 19912)] {
            let tree = generate_tree(profile, 0.01);
            assert_eq!(tree.files.len(), count, "{}", profile.name);
        }
    }

    #[test]
    fn nodejs_has_depth_13_and_big_dirs() {
        let tree = generate_tree(&NODEJS, 0.01);
        let max_depth = tree
            .dirs
            .iter()
            .map(|d| d.split('/').count())
            .max()
            .unwrap();
        assert!(max_depth >= 13, "depth {max_depth}");
        let big0 = tree.files.iter().filter(|f| f.path.starts_with("nodejs/big0/")).count();
        assert_eq!(big0, 1458);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_tree(&REDIS, 0.1);
        let b = generate_tree(&REDIS, 0.1);
        assert_eq!(a.files, b.files);
        assert_eq!(a.dirs, b.dirs);
    }

    #[test]
    fn clone_replays_on_nexus() {
        let rig = TestRig::fast();
        let fs = rig.nexus_fs();
        let small = RepoProfile { files: 25, big_dirs: &[10], ..REDIS };
        let tree = generate_tree(&small, 0.05);
        clone_repo(&fs, &tree).unwrap();
        // Spot-check one big-dir file landed.
        assert!(fs.read_file(&tree.files[0].path).is_ok());
    }
}
