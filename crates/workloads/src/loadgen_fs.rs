//! Massive-scale load generation over the *crypto-fs* layer (DESIGN.md
//! §15): full enclave clients — seal/open, dirnode/filenode metadata
//! commits, freshness checks, batched fetch→decrypt — as futures on the
//! `nexus-exec` executor.
//!
//! Where [`crate::loadgen`] drives the raw `StorageBackend` RPC surface,
//! this module mounts a real [`NexusVolume`] per simulated client and
//! drives the paper's actual data path. The worlds:
//!
//! - **async** ([`run_fs_scale_exec`]): one [`AsyncVolume`] future per
//!   client over ≤ `nexus_exec::MAX_WORKERS` OS threads;
//! - **serial oracle** ([`run_fs_scale_serial`]): the same clients run
//!   one after another on the calling thread — the pre-timing ground
//!   truth the async world must be byte-identical to;
//! - **thread-per-client** ([`crate::loadgen_baseline::run_fs_scale_threads`]):
//!   the `ConcurrentRig`-style baseline the ≥ 5× floor is gated against.
//!
//! ## Determinism at 100k enclaves
//!
//! Enclave randomness (fresh file UUIDs, per-chunk data keys, seal
//! nonces) comes from the *platform* RNG. One shared platform would
//! interleave all clients' draws schedule-dependently; same-seed replica
//! platforms would make all clients draw *identical* UUIDs and collide.
//! [`Platform::seeded_stream`] resolves this: every client is a process
//! on the same simulated machine (one sealing identity, so the owner's
//! [`SealedRootKey`] mounts everywhere) with its own deterministic RNG
//! stream — each client's draw sequence is a pure function of the run
//! seed and its index, under any scheduling. Combined with a commuting
//! op mix (Zipf reads + bulk reads of a setup-time shared keyspace,
//! private writes, ACL churn on the client's own directory), per-client
//! transcript chains and the server's ciphertext inventory are identical
//! in all three worlds.
//!
//! CPU crypto is charged to each client's `ClockLane` through the
//! modelled [`CryptoCost`] — identically in every world — so virtual
//! time stays honest about enclave compute without inheriting the host
//! scheduler's nondeterminism (lane-charging rules in DESIGN.md §15).

use std::sync::Arc;
use std::time::Duration;

use nexus_core::async_fs::{AsyncVolume, CryptoCost};
use nexus_core::{NexusConfig, NexusVolume, Rights, UserKeys};
use nexus_crypto::rng::SeededRandom;
use nexus_exec::Executor;
use nexus_sgx::{AttestationService, Platform};
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, SimClock};
use nexus_testkit::dist::Zipf;

use crate::loadgen::{
    f64_unit, fnv1a, Arrival, RunHistograms, ScaleConfig, ScaleReport, FNV_OFFSET,
};

/// Directory fan-out: every dirnode in the client tree stays at or below
/// this many entries, so no path component's metadata object grows with
/// the client count.
const DIR_FANOUT_BITS: u32 = 7;

/// One fs-level scale cell: N mounted enclave clients, each running a
/// seeded op stream against its own volume mount over one shared server.
#[derive(Debug, Clone)]
pub struct FsScaleConfig {
    /// Simulated client count (each is a full `NexusVolume` mount).
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Files in the shared read-only keyspace (written at setup).
    pub shared_files: usize,
    /// File payload size in bytes.
    pub value_bytes: usize,
    /// Private files per client (writes cycle through these slots).
    pub files_per_client: usize,
    /// Files per bulk (`read_files`) operation.
    pub bulk_width: usize,
    /// Zipf skew over the shared files.
    pub zipf_alpha: f64,
    /// Fraction of ops that are single shared-file reads.
    pub read_fraction: f64,
    /// Fraction of ops that are batched `read_files` bulk reads.
    pub bulk_fraction: f64,
    /// Fraction of ops that are ACL updates on the client's directory.
    pub acl_fraction: f64,
    /// Run seed; platform streams and op streams derive from it.
    pub seed: u64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Executor OS-thread budget (clamped to `nexus_exec::MAX_WORKERS`).
    pub threads: usize,
    /// Simulated network/disk cost model.
    pub latency: LatencyModel,
    /// Modelled in-enclave CPU cost, charged per op on the lane.
    pub crypto: CryptoCost,
}

impl FsScaleConfig {
    /// The standard fs cell: paper-calibrated RPC and crypto costs,
    /// Zipf(0.99) over 64 shared files, a repos/dbbench-flavoured mix of
    /// 40% reads / 15% bulk reads / 10% ACL churn / 35% private writes,
    /// closed loop.
    pub fn standard(clients: usize, ops_per_client: usize) -> FsScaleConfig {
        FsScaleConfig {
            clients,
            ops_per_client,
            shared_files: 64,
            value_bytes: 256,
            files_per_client: 8,
            bulk_width: 4,
            zipf_alpha: 0.99,
            read_fraction: 0.40,
            bulk_fraction: 0.15,
            acl_fraction: 0.10,
            seed: 0xF5_5CA1E_2026,
            arrival: Arrival::Closed,
            threads: nexus_exec::MAX_WORKERS,
            latency: LatencyModel::paper_calibrated(),
            crypto: CryptoCost::paper_calibrated(),
        }
    }
}

/// One generated fs operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOp {
    /// Read the shared file of this Zipf rank.
    Read(usize),
    /// Batched `read_files` of `bulk_width` shared files from this rank.
    Bulk(usize),
    /// Write this client's private file slot.
    Write(usize),
    /// Toggle the auditor's rights on this client's directory (`n`th
    /// ACL update: even = read-only, odd = read-write).
    Acl(usize),
}

/// Path of shared file `rank`.
pub fn shared_file(rank: usize) -> String {
    format!("shared/f{rank}")
}

/// Client `c`'s home directory. Three fixed levels (`t*/g*/c*`) keep
/// every dirnode on the path at ≤ 2^[`DIR_FANOUT_BITS`] entries however
/// many clients exist, so path resolution cost does not scale with N.
pub fn client_dir(c: usize) -> String {
    format!("t{}/g{}/c{}", c >> (2 * DIR_FANOUT_BITS), c >> DIR_FANOUT_BITS, c)
}

/// Path of client `c`'s private file `slot`.
pub fn private_file(c: usize, slot: usize) -> String {
    format!("{}/w{slot}", client_dir(c))
}

/// Deterministic payload of shared file `rank`.
pub fn shared_value(cfg: &FsScaleConfig, rank: usize) -> Vec<u8> {
    let tag = fnv1a(fnv1a(FNV_OFFSET, b"shared"), &(rank as u64).to_le_bytes()).to_le_bytes();
    (0..cfg.value_bytes).map(|i| tag[i % 8] ^ i as u8).collect()
}

/// Deterministic payload client `c` writes to `slot`.
pub fn private_value(cfg: &FsScaleConfig, c: usize, slot: usize) -> Vec<u8> {
    let tag = fnv1a(
        fnv1a(fnv1a(FNV_OFFSET, b"private"), &(c as u64).to_le_bytes()),
        &(slot as u64).to_le_bytes(),
    )
    .to_le_bytes();
    (0..cfg.value_bytes).map(|i| tag[i % 8] ^ i.wrapping_mul(3) as u8).collect()
}

/// The deterministic fs op stream for client `c` — identical in every
/// world, derived only from the config and the client index.
pub fn fs_ops_for_client(cfg: &FsScaleConfig, zipf: &Zipf, c: usize) -> Vec<FsOp> {
    let salt = fnv1a(fnv1a(FNV_OFFSET, b"fs-ops"), &(c as u64).to_le_bytes());
    let mut rng = SeededRandom::new(cfg.seed ^ salt);
    let mut writes = 0usize;
    let mut acls = 0usize;
    (0..cfg.ops_per_client)
        .map(|_| {
            let u = f64_unit(&mut rng);
            if u < cfg.read_fraction {
                FsOp::Read(zipf.sample_with(f64_unit(&mut rng)))
            } else if u < cfg.read_fraction + cfg.bulk_fraction {
                FsOp::Bulk(zipf.sample_with(f64_unit(&mut rng)))
            } else if u < cfg.read_fraction + cfg.bulk_fraction + cfg.acl_fraction {
                let n = acls;
                acls += 1;
                FsOp::Acl(n)
            } else {
                let slot = writes % cfg.files_per_client.max(1);
                writes += 1;
                FsOp::Write(slot)
            }
        })
        .collect()
}

/// Folds one completed fs operation into a client's transcript chain
/// (same FNV chaining discipline as the wire-level harness).
pub fn fold_fs_transcript(chain: u64, op: FsOp, result: &[u8]) -> u64 {
    let (tag, arg): (&[u8], u64) = match op {
        FsOp::Read(r) => (b"R", r as u64),
        FsOp::Bulk(s) => (b"B", s as u64),
        FsOp::Write(k) => (b"W", k as u64),
        FsOp::Acl(n) => (b"A", n as u64),
    };
    let mut h = fnv1a(fnv1a(chain, tag), &arg.to_le_bytes());
    h = fnv1a(h, &(result.len() as u64).to_le_bytes());
    fnv1a(h, result)
}

/// One mounted client: its enclave volume and the AFS connection whose
/// lane all of its costs (RPC and modelled crypto) are charged to.
pub struct FsClientHandle {
    /// The mounted, authenticated volume.
    pub volume: Arc<NexusVolume>,
    /// The client's AFS connection.
    pub afs: Arc<AfsClient>,
}

/// A built fs world: one shared AFS server, N mounted enclave clients,
/// shared keyspace and per-client home directories in place, every lane
/// raised to a common start epoch.
pub struct FsWorld {
    /// The shared (untrusted) store.
    pub server: AfsServer,
    /// The shared virtual clock.
    pub clock: SimClock,
    /// The mounted clients, index = client id.
    pub clients: Vec<FsClientHandle>,
}

/// Builds the world every fs run shares: the owner creates the volume on
/// stream 0 of the seeded machine, registers an auditor user, writes the
/// shared keyspace, and creates each client's home directory; client `c`
/// then mounts the owner's sealed rootkey on stream `c+1` (same sealing
/// identity, independent randomness) and authenticates. All setup cost
/// lands before the measured epoch: every client lane is raised to the
/// clock's post-setup value before this returns.
pub fn build_fs_world(cfg: &FsScaleConfig) -> FsWorld {
    let server = AfsServer::new();
    let clock = SimClock::new();
    let id_seed = cfg.seed ^ fnv1a(FNV_OFFSET, b"fs-platform");
    let owner_platform = Platform::seeded_stream(id_seed, 0);
    let ias = AttestationService::new();
    ias.register_platform(&owner_platform);
    let owner = UserKeys::from_seed("owner", &[0x51u8; 32]);
    let auditor = UserKeys::from_seed("auditor", &[0x52u8; 32]);
    // One cache shard per client: no internal cache contention at 100k
    // mounts, no 16-mutex memory tax (same reasoning as the wire world).
    let nexus_cfg = NexusConfig { cache_shards: 1, ..NexusConfig::default() };

    let owner_afs =
        Arc::new(AfsClient::connect_with_cache_shards(&server, clock.clone(), cfg.latency, 1));
    let (owner_volume, sealed) =
        NexusVolume::create(&owner_platform, owner_afs.clone(), &ias, &owner, nexus_cfg)
            .expect("fs world: volume create");
    owner_volume.authenticate(&owner).expect("fs world: owner auth");
    owner_volume.add_user(auditor.name(), auditor.public_key()).expect("fs world: add auditor");

    owner_volume.mkdir("shared").expect("fs world: mkdir shared");
    for rank in 0..cfg.shared_files {
        owner_volume
            .write_file(&shared_file(rank), &shared_value(cfg, rank))
            .expect("fs world: populate shared file");
    }
    if cfg.clients > 0 {
        let last = cfg.clients - 1;
        for t in 0..=(last >> (2 * DIR_FANOUT_BITS)) {
            owner_volume.mkdir(&format!("t{t}")).expect("fs world: mkdir t");
        }
        for g in 0..=(last >> DIR_FANOUT_BITS) {
            owner_volume
                .mkdir(&format!("t{}/g{g}", g >> DIR_FANOUT_BITS))
                .expect("fs world: mkdir g");
        }
        for c in 0..cfg.clients {
            owner_volume.mkdir(&client_dir(c)).expect("fs world: mkdir client dir");
        }
    }
    // The owner's mount (and its ~N cached dirnodes) is setup machinery;
    // drop it before the run so only real clients hold state.
    drop(owner_volume);
    drop(owner_afs);

    let clients: Vec<FsClientHandle> = (0..cfg.clients)
        .map(|c| {
            let platform = Platform::seeded_stream(id_seed, c as u64 + 1);
            let afs = Arc::new(AfsClient::connect_with_cache_shards(
                &server,
                clock.clone(),
                cfg.latency,
                1,
            ));
            let volume = NexusVolume::mount(&platform, afs.clone(), &ias, &sealed, nexus_cfg)
                .expect("fs world: client mount");
            volume.authenticate(&owner).expect("fs world: client auth");
            FsClientHandle { volume: Arc::new(volume), afs }
        })
        .collect();

    // Common start epoch: no client owes setup time to another.
    let now = clock.now();
    for fsc in &clients {
        fsc.afs.lane().raise_to(now);
    }
    FsWorld { server, clock, clients }
}

/// Executes one op synchronously on a mounted client, charging the
/// modelled crypto cost, and returns the transcript-relevant bytes. The
/// serial oracle and the thread baseline call this; the async world's
/// [`AsyncVolume`] methods perform the identical calls and charges.
pub(crate) fn apply_fs_op(
    cfg: &FsScaleConfig,
    fsc: &FsClientHandle,
    c: usize,
    op: FsOp,
) -> Vec<u8> {
    let lane = fsc.afs.lane();
    match op {
        FsOp::Read(rank) => {
            let data = fsc
                .volume
                .read_file(&shared_file(rank % cfg.shared_files.max(1)))
                .expect("fs read");
            cfg.crypto.charge(lane, data.len());
            data
        }
        FsOp::Bulk(start) => {
            let paths: Vec<String> = (0..cfg.bulk_width)
                .map(|i| shared_file((start + i) % cfg.shared_files.max(1)))
                .collect();
            let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
            let datas = fsc.volume.read_files(&refs).expect("fs bulk read");
            let flat: Vec<u8> = datas.concat();
            cfg.crypto.charge(lane, flat.len());
            flat
        }
        FsOp::Write(slot) => {
            let value = private_value(cfg, c, slot);
            fsc.volume.write_file(&private_file(c, slot), &value).expect("fs write");
            cfg.crypto.charge(lane, value.len());
            value
        }
        FsOp::Acl(n) => {
            let rights = if n % 2 == 0 { Rights::READ } else { Rights::RW };
            fsc.volume.set_acl(&client_dir(c), "auditor", rights).expect("fs acl");
            cfg.crypto.charge(lane, 0);
            vec![n as u8]
        }
    }
}

fn record_fs_latency(hist: &RunHistograms, op: FsOp, latency: Duration) {
    match op {
        FsOp::Read(_) | FsOp::Bulk(_) => hist.reads.record(latency),
        FsOp::Write(_) | FsOp::Acl(_) => hist.writes.record(latency),
    }
    hist.all.record(latency);
}

/// Drives one mounted client as a future: park at issue time (or the
/// open-loop arrival), run the enclave op, charge the modelled crypto,
/// record the latency, fold the transcript.
async fn drive_fs_client(
    cfg: FsScaleConfig,
    av: AsyncVolume,
    ops: Vec<FsOp>,
    arrivals: Option<Vec<Duration>>,
    c: usize,
    hist: Arc<RunHistograms>,
) -> u64 {
    let mut chain = FNV_OFFSET;
    for (k, op) in ops.into_iter().enumerate() {
        let issue = match &arrivals {
            Some(at) => {
                av.begin_at(at[k]).await;
                at[k]
            }
            None => av.local_now(),
        };
        let result = match op {
            FsOp::Read(rank) => av
                .read_file(&shared_file(rank % cfg.shared_files.max(1)))
                .await
                .expect("fs read"),
            FsOp::Bulk(start) => {
                let paths: Vec<String> = (0..cfg.bulk_width)
                    .map(|i| shared_file((start + i) % cfg.shared_files.max(1)))
                    .collect();
                av.read_files(&paths).await.expect("fs bulk read").concat()
            }
            FsOp::Write(slot) => {
                let value = private_value(&cfg, c, slot);
                av.write_file(&private_file(c, slot), &value).await.expect("fs write");
                value
            }
            FsOp::Acl(n) => {
                let rights = if n % 2 == 0 { Rights::READ } else { Rights::RW };
                av.set_acl(&client_dir(c), "auditor", rights).await.expect("fs acl");
                vec![n as u8]
            }
        };
        let latency = av.local_now().saturating_sub(issue);
        record_fs_latency(&hist, op, latency);
        chain = fold_fs_transcript(chain, op, &result);
    }
    chain
}

/// Runs one fs scale cell in the executor world: `cfg.clients` mounted
/// enclave clients as futures over at most `cfg.threads` OS threads.
pub fn run_fs_scale_exec(cfg: &FsScaleConfig) -> ScaleReport {
    let world = build_fs_world(cfg);
    let zipf = Zipf::new(cfg.shared_files, cfg.zipf_alpha);
    let hist = Arc::new(RunHistograms::default());
    let ex = Executor::new(world.clock.clone(), cfg.threads);
    let os_threads = ex.os_threads();

    let t0 = world.clock.now();
    let handles: Vec<_> = world
        .clients
        .iter()
        .enumerate()
        .map(|(c, fsc)| {
            let av = AsyncVolume::new(
                fsc.volume.clone(),
                fsc.afs.lane().clone(),
                ex.timer(),
                cfg.crypto,
            );
            let ops = fs_ops_for_client(cfg, &zipf, c);
            let arrivals = match cfg.arrival {
                Arrival::Closed => None,
                Arrival::Open { per_client_hz } => {
                    Some(fs_arrivals_for_client(cfg, per_client_hz, c, t0))
                }
            };
            ex.spawn(drive_fs_client(cfg.clone(), av, ops, arrivals, c, hist.clone()))
        })
        .collect();
    ex.run_until_idle();
    let makespan = world.clock.now() - t0;

    let transcripts =
        handles.iter().map(|h| h.try_take().expect("fs client completed")).collect();
    let total = (cfg.clients * cfg.ops_per_client) as u64;
    ScaleReport::assemble(makespan, total, hist, transcripts, &world.server, os_threads)
}

/// Runs the same cell as a serial oracle: every client's ops execute in
/// client order on the calling thread, with identical lane arithmetic.
/// This is the pre-timing ground truth for the differential gates.
pub fn run_fs_scale_serial(cfg: &FsScaleConfig) -> ScaleReport {
    let world = build_fs_world(cfg);
    let zipf = Zipf::new(cfg.shared_files, cfg.zipf_alpha);
    let hist = Arc::new(RunHistograms::default());

    let t0 = world.clock.now();
    let transcripts: Vec<u64> = world
        .clients
        .iter()
        .enumerate()
        .map(|(c, fsc)| {
            let ops = fs_ops_for_client(cfg, &zipf, c);
            let arrivals = match cfg.arrival {
                Arrival::Closed => None,
                Arrival::Open { per_client_hz } => {
                    Some(fs_arrivals_for_client(cfg, per_client_hz, c, t0))
                }
            };
            let mut chain = FNV_OFFSET;
            for (k, op) in ops.into_iter().enumerate() {
                let issue = match &arrivals {
                    Some(at) => {
                        fsc.afs.lane().raise_to(at[k]);
                        at[k]
                    }
                    None => fsc.afs.lane().local_now(),
                };
                let result = apply_fs_op(cfg, fsc, c, op);
                let latency = fsc.afs.lane().local_now().saturating_sub(issue);
                record_fs_latency(&hist, op, latency);
                chain = fold_fs_transcript(chain, op, &result);
            }
            chain
        })
        .collect();
    let makespan = world.clock.now() - t0;
    let total = (cfg.clients * cfg.ops_per_client) as u64;
    ScaleReport::assemble(makespan, total, hist, transcripts, &world.server, 1)
}

/// Deterministic open-loop arrivals for fs client `c` (salted apart from
/// both the fs op stream and the wire-level arrival stream), offset to
/// the measured epoch `t0`: world setup — mounts, the owner's directory
/// tree — has already consumed virtual time, and a schedule anchored at
/// zero would book all of it as queueing delay on the first arrivals.
pub fn fs_arrivals_for_client(
    cfg: &FsScaleConfig,
    per_client_hz: f64,
    c: usize,
    t0: Duration,
) -> Vec<Duration> {
    let shim = ScaleConfig {
        clients: cfg.clients,
        ops_per_client: cfg.ops_per_client,
        shared_keys: cfg.shared_files,
        value_bytes: cfg.value_bytes,
        zipf_alpha: cfg.zipf_alpha,
        read_fraction: cfg.read_fraction,
        seed: cfg.seed ^ fnv1a(FNV_OFFSET, b"fs-arrivals"),
        arrival: cfg.arrival,
        threads: cfg.threads,
        latency: cfg.latency,
    };
    crate::loadgen::arrivals_for_client(&shim, per_client_hz, c)
        .into_iter()
        .map(|at| at + t0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen_baseline::run_fs_scale_threads;

    #[test]
    fn fs_op_streams_are_deterministic_and_respect_the_mix() {
        let cfg = FsScaleConfig::standard(4, 400);
        let zipf = Zipf::new(cfg.shared_files, cfg.zipf_alpha);
        let a = fs_ops_for_client(&cfg, &zipf, 1);
        assert_eq!(a, fs_ops_for_client(&cfg, &zipf, 1));
        assert_ne!(a, fs_ops_for_client(&cfg, &zipf, 2));
        let reads = a.iter().filter(|op| matches!(op, FsOp::Read(_))).count();
        let bulks = a.iter().filter(|op| matches!(op, FsOp::Bulk(_))).count();
        let acls = a.iter().filter(|op| matches!(op, FsOp::Acl(_))).count();
        let writes = a.iter().filter(|op| matches!(op, FsOp::Write(_))).count();
        assert_eq!(reads + bulks + acls + writes, 400);
        // 400 ops at 40/15/10/35: generous binomial bounds.
        assert!((110..=210).contains(&reads), "{reads} reads");
        assert!((25..=100).contains(&bulks), "{bulks} bulks");
        assert!((10..=80).contains(&acls), "{acls} acls");
        assert!((85..=195).contains(&writes), "{writes} writes");
    }

    #[test]
    fn async_fs_world_matches_the_serial_oracle() {
        // The tentpole invariant: full enclave clients multiplexed as
        // futures execute byte-for-byte what the serial oracle executes —
        // transcripts, ciphertext inventory, and (lanes being charged
        // identically) the simulated makespan.
        let mut cfg = FsScaleConfig::standard(12, 6);
        cfg.threads = 4;
        let serial = run_fs_scale_serial(&cfg);
        let exec = run_fs_scale_exec(&cfg);
        assert_eq!(exec.transcripts, serial.transcripts);
        assert_eq!(exec.inventory, serial.inventory);
        assert_eq!(exec.makespan, serial.makespan);
        assert_eq!(exec.total_ops, serial.total_ops);
        assert_eq!(exec.hist.all.count(), serial.hist.all.count());
        assert!(exec.os_threads <= nexus_exec::MAX_WORKERS);
        // And the run is reproducible wholesale.
        let again = run_fs_scale_exec(&cfg);
        assert_eq!(exec.transcripts, again.transcripts);
        assert_eq!(exec.inventory, again.inventory);
    }

    #[test]
    fn all_three_fs_worlds_agree() {
        let mut cfg = FsScaleConfig::standard(8, 5);
        cfg.threads = 2;
        let exec = run_fs_scale_exec(&cfg);
        let threads = run_fs_scale_threads(&cfg);
        assert_eq!(exec.transcripts, threads.transcripts);
        assert_eq!(exec.inventory, threads.inventory);
        assert_eq!(exec.makespan, threads.makespan);
        assert_eq!(threads.os_threads, cfg.clients);
    }

    #[test]
    fn fs_open_loop_runs_and_records_queueing() {
        let mut cfg = FsScaleConfig::standard(4, 8);
        cfg.threads = 1;
        cfg.arrival = Arrival::Open { per_client_hz: 2000.0 };
        let exec = run_fs_scale_exec(&cfg);
        let serial = run_fs_scale_serial(&cfg);
        assert_eq!(exec.transcripts, serial.transcripts);
        assert_eq!(exec.inventory, serial.inventory);
        assert_eq!(exec.hist.all.count(), 32);
        // 2 kHz arrivals against multi-ms enclave ops: the tail must
        // show queueing delay beyond a single op's cost.
        assert!(exec.hist.all.quantile(0.99) > exec.hist.all.quantile(0.1));
    }
}
