//! Experiment rig: wires platforms, attestation, the simulated AFS
//! deployment, and a mounted NEXUS volume together for workloads and
//! benchmarks.

use std::sync::Arc;
use std::time::Duration;

use nexus_core::{NexusConfig, NexusVolume, Rights, UserKeys, VolumeJoiner};
use nexus_pool::ThreadPool;
use nexus_sgx::{AttestationService, Platform};
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, SimClock};

use crate::bench_fs::{NexusFs, PlainAfs};

/// A self-contained experimental setup.
pub struct TestRig {
    /// The client machine.
    pub platform: Platform,
    /// Simulated Intel attestation service.
    pub ias: AttestationService,
    /// Volume owner identity.
    pub owner: UserKeys,
    /// Latency model applied to every AFS client created by this rig.
    pub latency: LatencyModel,
    /// NEXUS configuration for volumes created by this rig.
    pub config: NexusConfig,
}

impl TestRig {
    /// A rig with the latency model calibrated to the paper's testbed.
    pub fn default_latency() -> TestRig {
        TestRig::with(LatencyModel::paper_calibrated(), NexusConfig::default())
    }

    /// A rig with zero simulated latency (fast unit tests).
    pub fn fast() -> TestRig {
        TestRig::with(LatencyModel::instant(), NexusConfig::default())
    }

    /// A fully custom rig.
    pub fn with(latency: LatencyModel, config: NexusConfig) -> TestRig {
        let platform = Platform::seeded(0xBEEF);
        let ias = AttestationService::new();
        ias.register_platform(&platform);
        TestRig {
            platform,
            ias,
            owner: UserKeys::from_seed("owner", &[11u8; 32]),
            latency,
            config,
        }
    }

    /// Fresh AFS deployment: (server, connected client, its clock).
    pub fn afs(&self) -> (AfsServer, Arc<AfsClient>, SimClock) {
        let server = AfsServer::new();
        let clock = SimClock::new();
        let client = Arc::new(AfsClient::connect(&server, clock.clone(), self.latency));
        (server, client, clock)
    }

    /// A fresh, authenticated NEXUS volume over its own AFS deployment.
    pub fn nexus_fs(&self) -> NexusFs {
        self.nexus_deployment().1
    }

    /// Like [`TestRig::nexus_fs`] but also hands back the AFS server, so a
    /// benchmark can audit the stored (ciphertext) objects directly.
    pub fn nexus_deployment(&self) -> (AfsServer, NexusFs) {
        let (server, client, _clock) = self.afs();
        let (volume, _sealed) = NexusVolume::create(
            &self.platform,
            client.clone(),
            &self.ias,
            &self.owner,
            self.config,
        )
        .expect("volume creation");
        volume.authenticate(&self.owner).expect("owner auth");
        (server, NexusFs::new(volume, client))
    }

    /// A fresh plain-AFS baseline over its own AFS deployment.
    pub fn plain_afs(&self) -> PlainAfs {
        let (_server, client, _clock) = self.afs();
        PlainAfs::new(client)
    }
}

/// N authenticated NEXUS clients (one owner + N−1 grantees, each a full
/// enclave on its own machine) over one shared AFS server, ready to be
/// driven concurrently from [`nexus_pool`] workers.
///
/// Two flavors, identical except for clock wiring:
///
/// - [`ConcurrentRig::build`] puts each client's AFS connection on its own
///   [`ClockLane`], so independent clients' RPC round trips overlap in
///   simulated time and a round's wall-clock is the *slowest* client;
/// - [`ConcurrentRig::build_serial`] hands every client one shared lane,
///   reproducing the old single-channel scheduler where all clients' RPC
///   costs sum — the serial baseline multi-client benchmarks compare
///   against.
///
/// Setup (platform seeds, user keys, grant flow, per-client directories)
/// is deterministic and identical in both flavors, so the resulting
/// server states are byte-comparable.
pub struct ConcurrentRig {
    server: AfsServer,
    clock: SimClock,
    clients: Vec<NexusFs>,
}

impl ConcurrentRig {
    /// Builds an N-client rig with a private clock lane per client.
    pub fn build(n: usize, latency: LatencyModel, config: NexusConfig) -> ConcurrentRig {
        ConcurrentRig::build_inner(n, latency, config, false)
    }

    /// Builds an N-client rig where every client charges one shared lane.
    pub fn build_serial(n: usize, latency: LatencyModel, config: NexusConfig) -> ConcurrentRig {
        ConcurrentRig::build_inner(n, latency, config, true)
    }

    fn build_inner(
        n: usize,
        latency: LatencyModel,
        config: NexusConfig,
        shared_lane: bool,
    ) -> ConcurrentRig {
        assert!(n >= 1, "a rig needs at least one client");
        let server = AfsServer::new();
        let clock = SimClock::new();
        let ias = AttestationService::new();
        let lane = clock.lane();
        let connect = |server: &AfsServer| -> Arc<AfsClient> {
            if shared_lane {
                Arc::new(AfsClient::connect_on_lane(server, lane.clone(), latency))
            } else {
                Arc::new(AfsClient::connect(server, clock.clone(), latency))
            }
        };

        let owner_machine = Platform::seeded(1);
        ias.register_platform(&owner_machine);
        let owner = UserKeys::from_seed("owner", &[11u8; 32]);
        let owner_afs = connect(&server);
        let (owner_volume, _) =
            NexusVolume::create(&owner_machine, owner_afs.clone(), &ias, &owner, config)
                .expect("create volume");
        owner_volume.authenticate(&owner).expect("owner auth");
        // Per-client working directories, created serially by the owner so
        // setup is deterministic regardless of lane wiring.
        for c in 0..n {
            owner_volume.mkdir(&Self::dir(c)).expect("mkdir");
        }

        let mut clients = vec![NexusFs::new(owner_volume, owner_afs)];
        for i in 1..n {
            let machine = Platform::seeded(100 + i as u64);
            ias.register_platform(&machine);
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&(0xA000 + i as u64).to_le_bytes());
            let peer = UserKeys::from_seed(&format!("user{i}"), &seed);
            let afs = connect(&server);
            let joiner = VolumeJoiner::new(&machine, afs.clone());
            joiner.publish_offer(&peer).expect("offer");
            clients[0]
                .volume()
                .grant_access(&owner, &format!("user{i}"), &peer.public_key())
                .expect("grant");
            clients[0]
                .volume()
                .set_acl(&Self::dir(i), &format!("user{i}"), Rights::RW)
                .expect("acl");
            let sealed = joiner.accept_grant(&peer, &owner.public_key()).expect("accept");
            let volume = NexusVolume::mount(&machine, afs.clone(), &ias, &sealed, config)
                .expect("mount");
            volume.authenticate(&peer).expect("peer auth");
            clients.push(NexusFs::new(volume, afs));
        }
        ConcurrentRig { server, clock, clients }
    }

    /// Client `c`'s private working directory.
    pub fn dir(c: usize) -> String {
        format!("c{c}")
    }

    /// The shared AFS server (ciphertext inventory, callback state).
    pub fn server(&self) -> &AfsServer {
        &self.server
    }

    /// The shared virtual clock (reads the slowest lane).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The authenticated clients, owner first.
    pub fn clients(&self) -> &[NexusFs] {
        &self.clients
    }

    /// Drops every client's AFS cache (cold-cache runs).
    pub fn flush_all_caches(&self) {
        for fs in &self.clients {
            fs.client().flush_cache();
        }
    }

    /// Drives `f(client_index, fs)` on every client from a worker pool and
    /// returns the simulated makespan: all lanes are first raised to "now"
    /// so the round starts synchronized, and the elapsed shared-clock time
    /// (the slowest client's lane) is the round's wall-clock.
    pub fn run(&self, f: impl Fn(usize, &NexusFs) + Sync) -> Duration {
        let t0 = self.sync_lanes();
        let pool = ThreadPool::new(self.clients.len());
        pool.par_map_indexed(&self.clients, |i, fs| f(i, fs));
        self.clock.now() - t0
    }

    /// Like [`ConcurrentRig::run`] but a poisoned client does not abort
    /// the bench process: each client's work runs under `catch_unwind`,
    /// and the panic payload (the actual message, preserved verbatim by
    /// [`nexus_pool`]) comes back as that client's `Err` while the healthy
    /// clients' results stay `Ok`.
    pub fn run_fallible(
        &self,
        f: impl Fn(usize, &NexusFs) + Sync,
    ) -> (Duration, Vec<Result<(), String>>) {
        let t0 = self.sync_lanes();
        let pool = ThreadPool::new(self.clients.len());
        let outcomes = pool.par_map_indexed(&self.clients, |i, fs| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, fs)))
                .map_err(|payload| panic_message(&*payload))
        });
        (self.clock.now() - t0, outcomes)
    }

    /// Like [`ConcurrentRig::run`] but on the calling thread, one client
    /// after another — with [`ConcurrentRig::build_serial`] this is the
    /// old serial world end to end.
    pub fn run_serial(&self, f: impl Fn(usize, &NexusFs)) -> Duration {
        let t0 = self.sync_lanes();
        for (i, fs) in self.clients.iter().enumerate() {
            f(i, fs);
        }
        self.clock.now() - t0
    }

    fn sync_lanes(&self) -> Duration {
        let now = self.clock.now();
        for fs in &self.clients {
            fs.client().lane().raise_to(now);
        }
        self.clock.now()
    }
}

/// Renders a caught panic payload as a message. Formatted panics carry
/// `String` or `&str` depending on how they were raised; anything exotic
/// gets a fixed placeholder rather than a second panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_fs::BenchFs;

    #[test]
    fn rigs_build_both_systems() {
        let rig = TestRig::fast();
        let nexus = rig.nexus_fs();
        let afs = rig.plain_afs();
        assert_eq!(nexus.name(), "nexus");
        assert_eq!(afs.name(), "openafs");
    }

    #[test]
    fn concurrent_rig_clients_share_one_volume() {
        let rig = ConcurrentRig::build(3, LatencyModel::instant(), NexusConfig::default());
        assert_eq!(rig.clients().len(), 3);
        let makespan = rig.run(|i, fs| {
            fs.write_file(&format!("{}/hello", ConcurrentRig::dir(i)), b"from a worker")
                .expect("write");
        });
        assert!(makespan >= std::time::Duration::ZERO);
        // Every client's file is visible to the owner through the shared
        // server, in that client's own directory.
        for i in 0..3 {
            assert_eq!(
                rig.clients()[0]
                    .read_file(&format!("{}/hello", ConcurrentRig::dir(i)))
                    .expect("read"),
                b"from a worker"
            );
        }
    }

    #[test]
    fn poisoned_client_surfaces_as_per_client_error() {
        // Regression for the scale harness: one client panicking mid-round
        // must not take down the whole bench process — it becomes that
        // client's Err (with the real message), the others finish Ok, and
        // the rig stays usable for another round.
        let rig = ConcurrentRig::build(3, LatencyModel::instant(), NexusConfig::default());
        let (_span, outcomes) = rig.run_fallible(|i, fs| {
            if i == 1 {
                panic!("client {i} hit a corrupted chunk");
            }
            fs.write_file(&format!("{}/ok", ConcurrentRig::dir(i)), b"fine").expect("write");
        });
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok());
        assert_eq!(outcomes[1].as_ref().unwrap_err(), "client 1 hit a corrupted chunk");
        assert!(outcomes[2].is_ok());
        // The healthy clients' writes landed and the rig still runs.
        assert_eq!(rig.clients()[0].read_file("c0/ok").expect("read"), b"fine");
        let (_span, outcomes) = rig.run_fallible(|_, _| {});
        assert!(outcomes.iter().all(Result::is_ok));
    }

    #[test]
    fn serial_rig_replays_the_same_bytes() {
        let work = |i: usize, fs: &NexusFs| {
            for k in 0..3 {
                fs.write_file(&format!("{}/f{k}", ConcurrentRig::dir(i)), &[i as u8; 64])
                    .expect("write");
            }
        };
        let conc = ConcurrentRig::build(2, LatencyModel::paper_calibrated(), NexusConfig::default());
        let serial =
            ConcurrentRig::build_serial(2, LatencyModel::paper_calibrated(), NexusConfig::default());
        let conc_span = conc.run(work);
        let serial_span = serial.run_serial(work);
        // Deterministic setup + disjoint directories: identical ciphertext.
        assert_eq!(conc.server().object_inventory(), serial.server().object_inventory());
        // Lanes overlap in the concurrent world, sum in the serial one.
        assert!(conc_span < serial_span, "{conc_span:?} vs {serial_span:?}");
    }
}
