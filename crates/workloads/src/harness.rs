//! Experiment rig: wires platforms, attestation, the simulated AFS
//! deployment, and a mounted NEXUS volume together for workloads and
//! benchmarks.

use std::sync::Arc;

use nexus_core::{NexusConfig, NexusVolume, UserKeys};
use nexus_sgx::{AttestationService, Platform};
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, SimClock};

use crate::bench_fs::{NexusFs, PlainAfs};

/// A self-contained experimental setup.
pub struct TestRig {
    /// The client machine.
    pub platform: Platform,
    /// Simulated Intel attestation service.
    pub ias: AttestationService,
    /// Volume owner identity.
    pub owner: UserKeys,
    /// Latency model applied to every AFS client created by this rig.
    pub latency: LatencyModel,
    /// NEXUS configuration for volumes created by this rig.
    pub config: NexusConfig,
}

impl TestRig {
    /// A rig with the latency model calibrated to the paper's testbed.
    pub fn default_latency() -> TestRig {
        TestRig::with(LatencyModel::paper_calibrated(), NexusConfig::default())
    }

    /// A rig with zero simulated latency (fast unit tests).
    pub fn fast() -> TestRig {
        TestRig::with(LatencyModel::instant(), NexusConfig::default())
    }

    /// A fully custom rig.
    pub fn with(latency: LatencyModel, config: NexusConfig) -> TestRig {
        let platform = Platform::seeded(0xBEEF);
        let ias = AttestationService::new();
        ias.register_platform(&platform);
        TestRig {
            platform,
            ias,
            owner: UserKeys::from_seed("owner", &[11u8; 32]),
            latency,
            config,
        }
    }

    /// Fresh AFS deployment: (server, connected client, its clock).
    pub fn afs(&self) -> (AfsServer, Arc<AfsClient>, SimClock) {
        let server = AfsServer::new();
        let clock = SimClock::new();
        let client = Arc::new(AfsClient::connect(&server, clock.clone(), self.latency));
        (server, client, clock)
    }

    /// A fresh, authenticated NEXUS volume over its own AFS deployment.
    pub fn nexus_fs(&self) -> NexusFs {
        self.nexus_deployment().1
    }

    /// Like [`TestRig::nexus_fs`] but also hands back the AFS server, so a
    /// benchmark can audit the stored (ciphertext) objects directly.
    pub fn nexus_deployment(&self) -> (AfsServer, NexusFs) {
        let (server, client, _clock) = self.afs();
        let (volume, _sealed) = NexusVolume::create(
            &self.platform,
            client.clone(),
            &self.ias,
            &self.owner,
            self.config,
        )
        .expect("volume creation");
        volume.authenticate(&self.owner).expect("owner auth");
        (server, NexusFs::new(volume, client))
    }

    /// A fresh plain-AFS baseline over its own AFS deployment.
    pub fn plain_afs(&self) -> PlainAfs {
        let (_server, client, _clock) = self.afs();
        PlainAfs::new(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_fs::BenchFs;

    #[test]
    fn rigs_build_both_systems() {
        let rig = TestRig::fast();
        let nexus = rig.nexus_fs();
        let afs = rig.plain_afs();
        assert_eq!(nexus.name(), "nexus");
        assert_eq!(afs.name(), "openafs");
    }
}
