//! The benchmarking filesystem abstraction.
//!
//! Every workload in this crate drives a [`BenchFs`], so the same code runs
//! against both systems the paper compares:
//!
//! - [`NexusFs`] — a mounted NEXUS volume over a simulated AFS client;
//! - [`PlainAfs`] — the unmodified-OpenAFS baseline: the same simulated AFS
//!   client with plaintext objects and no enclave.
//!
//! Timing has two components, mirroring the paper's breakdown (§VII-A):
//! **simulated I/O time** accumulated on the virtual clock by the storage
//! substrate (RPC round trips + transfer), and **enclave time** measured as
//! real compute spent inside ecalls (zero for the baseline).

use std::sync::Arc;
use std::time::{Duration, Instant};

use nexus_core::{NexusError, NexusVolume};
use nexus_storage::afs::AfsClient;
use nexus_storage::{StorageBackend, StorageError};

/// Workload-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError(pub String);

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload error: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

impl From<NexusError> for WorkloadError {
    fn from(e: NexusError) -> Self {
        WorkloadError(e.to_string())
    }
}

impl From<StorageError> for WorkloadError {
    fn from(e: StorageError) -> Self {
        WorkloadError(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WorkloadError>;

/// A cumulative timing snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsClock {
    /// Virtual network/storage time.
    pub sim_io: Duration,
    /// Real compute time inside the enclave (zero for baselines).
    pub enclave: Duration,
}

/// One measured workload sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sample {
    /// Virtual network/storage time consumed.
    pub sim_io: Duration,
    /// Enclave compute time consumed.
    pub enclave: Duration,
    /// Real wall-clock time of the workload body.
    pub real: Duration,
}

impl Sample {
    /// The headline latency: simulated I/O plus real compute.
    ///
    /// The baseline has no enclave component, so its total is `sim_io` plus
    /// the (negligible) untrusted compute; for NEXUS the enclave term adds
    /// the cryptographic work, exactly the two columns the paper reports.
    pub fn total(&self) -> Duration {
        self.sim_io + self.enclave
    }

    /// Adds another sample (for accumulating multi-phase workloads).
    pub fn add(&mut self, other: Sample) {
        self.sim_io += other.sim_io;
        self.enclave += other.enclave;
        self.real += other.real;
    }

    /// Divides by `n` runs.
    pub fn mean_of(mut self, n: u32) -> Sample {
        self.sim_io /= n;
        self.enclave /= n;
        self.real /= n;
        self
    }
}

/// Filesystem surface the workloads need.
pub trait BenchFs {
    /// Human-readable system name ("nexus" / "openafs").
    fn name(&self) -> &str;

    /// Creates a directory (parents included).
    fn mkdir_all(&self, path: &str) -> Result<()>;

    /// Writes (replaces) a whole file.
    fn write_file(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Reads a whole file.
    fn read_file(&self, path: &str) -> Result<Vec<u8>>;

    /// Reads many whole files; systems with a batched storage path fetch
    /// all of them in one round trip.
    fn read_files(&self, paths: &[&str]) -> Result<Vec<Vec<u8>>> {
        paths.iter().map(|p| self.read_file(p)).collect()
    }

    /// Reads `len` bytes at `offset`.
    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Removes a file.
    fn remove(&self, path: &str) -> Result<()>;

    /// Renames a file.
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// Lists the names in a directory (files and subdirectories).
    fn list_dir(&self, path: &str) -> Result<Vec<String>>;

    /// Subdirectory names in a directory.
    fn list_subdirs(&self, path: &str) -> Result<Vec<String>>;

    /// File size without reading contents.
    fn stat_size(&self, path: &str) -> Result<u64>;

    /// Drops client-side caches (the evaluation flushes the AFS cache
    /// before each run).
    fn flush_caches(&self);

    /// Cumulative timing counters.
    fn clock(&self) -> FsClock;
}

/// Runs `body` against `fs` and returns the consumed time deltas.
pub fn measure<F: FnOnce() -> Result<()>>(fs: &dyn BenchFs, body: F) -> Result<Sample> {
    let before = fs.clock();
    let started = Instant::now();
    body()?;
    let real = started.elapsed();
    let after = fs.clock();
    Ok(Sample {
        sim_io: after.sim_io - before.sim_io,
        enclave: after.enclave - before.enclave,
        real,
    })
}

// ---------------------------------------------------------------------------
// NEXUS adapter.
// ---------------------------------------------------------------------------

/// A NEXUS volume as a benchmark filesystem.
pub struct NexusFs {
    volume: NexusVolume,
    afs: Arc<AfsClient>,
}

impl NexusFs {
    /// Wraps a mounted, authenticated volume running over `afs`.
    pub fn new(volume: NexusVolume, afs: Arc<AfsClient>) -> NexusFs {
        NexusFs { volume, afs }
    }

    /// The wrapped volume.
    pub fn volume(&self) -> &NexusVolume {
        &self.volume
    }

    /// The underlying AFS client (for RPC accounting).
    pub fn client(&self) -> &AfsClient {
        &self.afs
    }
}

impl BenchFs for NexusFs {
    fn name(&self) -> &str {
        "nexus"
    }

    fn mkdir_all(&self, path: &str) -> Result<()> {
        Ok(self.volume.mkdir_all(path)?)
    }

    fn write_file(&self, path: &str, data: &[u8]) -> Result<()> {
        Ok(self.volume.write_file(path, data)?)
    }

    fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        Ok(self.volume.read_file(path)?)
    }

    fn read_files(&self, paths: &[&str]) -> Result<Vec<Vec<u8>>> {
        Ok(self.volume.read_files(paths)?)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        Ok(self.volume.read_range(path, offset, len)?)
    }

    fn remove(&self, path: &str) -> Result<()> {
        Ok(self.volume.remove(path)?)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        Ok(self.volume.rename(from, to)?)
    }

    fn list_dir(&self, path: &str) -> Result<Vec<String>> {
        Ok(self.volume.list_dir(path)?.into_iter().map(|r| r.name).collect())
    }

    fn list_subdirs(&self, path: &str) -> Result<Vec<String>> {
        Ok(self
            .volume
            .list_dir(path)?
            .into_iter()
            .filter(|r| r.kind == nexus_core::FileType::Directory)
            .map(|r| r.name)
            .collect())
    }

    fn stat_size(&self, path: &str) -> Result<u64> {
        Ok(self.volume.lookup(path)?.size)
    }

    fn flush_caches(&self) {
        self.afs.flush_cache();
    }

    fn clock(&self) -> FsClock {
        FsClock {
            sim_io: self.afs.simulated_time(),
            enclave: self.volume.enclave().stats().enclave_time(),
        }
    }
}

// ---------------------------------------------------------------------------
// Plain-AFS (unmodified OpenAFS) baseline adapter.
// ---------------------------------------------------------------------------

/// The OpenAFS baseline: plaintext objects straight on the AFS client.
///
/// Files map to objects `f:<path>`, directories to marker objects
/// `d:<path>/`; every operation is the single whole-file RPC the real
/// client would issue (with its cache and callbacks intact).
pub struct PlainAfs {
    afs: Arc<AfsClient>,
}

impl PlainAfs {
    /// Wraps an AFS client.
    pub fn new(afs: Arc<AfsClient>) -> PlainAfs {
        PlainAfs { afs }
    }

    fn file_obj(path: &str) -> String {
        format!("f:{path}")
    }

    fn dir_obj(path: &str) -> String {
        format!("d:{path}/")
    }
}

impl BenchFs for PlainAfs {
    fn name(&self) -> &str {
        "openafs"
    }

    fn mkdir_all(&self, path: &str) -> Result<()> {
        let mut cur = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            if !cur.is_empty() {
                cur.push('/');
            }
            cur.push_str(comp);
            self.afs.put(&Self::dir_obj(&cur), b"")?;
        }
        Ok(())
    }

    fn write_file(&self, path: &str, data: &[u8]) -> Result<()> {
        Ok(self.afs.put(&Self::file_obj(path), data)?)
    }

    fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        Ok(self.afs.get(&Self::file_obj(path))?)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        Ok(self.afs.get_range(&Self::file_obj(path), offset, len)?)
    }

    fn remove(&self, path: &str) -> Result<()> {
        Ok(self.afs.delete(&Self::file_obj(path))?)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        Ok(self
            .afs
            .rename_object(&Self::file_obj(from), &Self::file_obj(to))?)
    }

    fn list_dir(&self, path: &str) -> Result<Vec<String>> {
        let prefix_f = Self::file_obj(&format!("{path}/"));
        let prefix_d = Self::dir_obj(path);
        let mut out = Vec::new();
        for name in self.afs.list(&prefix_f) {
            let rest = &name[prefix_f.len()..];
            if !rest.contains('/') {
                out.push(rest.to_string());
            }
        }
        for name in self.afs.list(&prefix_d) {
            let rest = &name[prefix_d.len()..];
            if !rest.is_empty() && !rest[..rest.len() - 1].contains('/') && rest.ends_with('/') {
                out.push(rest[..rest.len() - 1].to_string());
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    fn list_subdirs(&self, path: &str) -> Result<Vec<String>> {
        let prefix_d = Self::dir_obj(path);
        let mut out = Vec::new();
        for name in self.afs.list(&prefix_d) {
            let rest = &name[prefix_d.len()..];
            if rest.ends_with('/') && !rest[..rest.len() - 1].contains('/') {
                out.push(rest[..rest.len() - 1].to_string());
            }
        }
        Ok(out)
    }

    fn stat_size(&self, path: &str) -> Result<u64> {
        Ok(self.afs.stat(&Self::file_obj(path))?.size)
    }

    fn flush_caches(&self) {
        self.afs.flush_cache();
    }

    fn clock(&self) -> FsClock {
        FsClock { sim_io: self.afs.simulated_time(), enclave: Duration::ZERO }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TestRig;

    #[test]
    fn plain_afs_roundtrip() {
        let rig = TestRig::fast();
        let fs = rig.plain_afs();
        fs.mkdir_all("a/b").unwrap();
        fs.write_file("a/b/f.txt", b"hi").unwrap();
        assert_eq!(fs.read_file("a/b/f.txt").unwrap(), b"hi");
        assert_eq!(fs.stat_size("a/b/f.txt").unwrap(), 2);
        assert_eq!(fs.list_dir("a/b").unwrap(), vec!["f.txt"]);
        assert_eq!(fs.list_subdirs("a").unwrap(), vec!["b"]);
        fs.rename("a/b/f.txt", "a/b/g.txt").unwrap();
        assert_eq!(fs.list_dir("a/b").unwrap(), vec!["g.txt"]);
        fs.remove("a/b/g.txt").unwrap();
        assert!(fs.read_file("a/b/g.txt").is_err());
    }

    #[test]
    fn nexus_fs_roundtrip() {
        let rig = TestRig::fast();
        let fs = rig.nexus_fs();
        fs.mkdir_all("a/b").unwrap();
        fs.write_file("a/b/f.txt", b"hi").unwrap();
        assert_eq!(fs.read_file("a/b/f.txt").unwrap(), b"hi");
        assert_eq!(fs.list_dir("a/b").unwrap(), vec!["f.txt"]);
        assert_eq!(fs.list_subdirs("a").unwrap(), vec!["b"]);
    }

    #[test]
    fn measure_reports_deltas() {
        let rig = TestRig::default_latency();
        let fs = rig.plain_afs();
        let sample = measure(&fs, || {
            fs.write_file("x", &vec![0u8; 100_000])?;
            Ok(())
        })
        .unwrap();
        assert!(sample.sim_io > Duration::ZERO);
        assert_eq!(sample.enclave, Duration::ZERO);
    }

    #[test]
    fn nexus_reports_enclave_time() {
        let rig = TestRig::default_latency();
        let fs = rig.nexus_fs();
        let sample = measure(&fs, || {
            fs.write_file("x", &vec![0u8; 100_000])?;
            Ok(())
        })
        .unwrap();
        assert!(sample.enclave > Duration::ZERO);
        assert!(sample.sim_io > Duration::ZERO);
    }
}
