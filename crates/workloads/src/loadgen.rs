//! Massive-scale load generation over the async executor (DESIGN.md §14).
//!
//! This module is the *executor world*: every simulated client is one
//! spawned future on [`nexus_exec::Executor`], so 100k clients multiplex
//! over at most [`nexus_exec::MAX_WORKERS`] OS threads. The matching
//! thread-per-client world lives in [`crate::loadgen_baseline`] — the two
//! share the per-client operation streams below, so their transcripts are
//! byte-identical and only the scheduling substrate differs.
//!
//! Workload shape (the classic key-value scale recipe):
//!
//! - **Zipf(α) reads** over a shared, pre-populated keyspace. Shared keys
//!   are never written during the run, so a client's hit/miss sequence
//!   depends only on its *own* access history — deterministic under any
//!   cross-client interleaving.
//! - **Private writes**: each client appends to its own `c{i}/w{k}`
//!   namespace. No cross-client callback invalidations, so all operations
//!   commute and both worlds produce identical per-client transcripts and
//!   identical server inventories.
//! - **Arrival processes**: closed-loop (next op issues when the previous
//!   completes) or open-loop (ops arrive on a deterministic Poisson
//!   schedule, independent of service times, so queueing delay — the
//!   coordinated-omission tail — lands in the latency histogram).
//!
//! All randomness flows from `nexus_crypto::rng::SeededRandom` streams
//! derived per client from the run seed, through the source-agnostic
//! samplers in `nexus_testkit::dist`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nexus_crypto::rng::{SecureRandom, SeededRandom};
use nexus_exec::io::AsyncStorage;
use nexus_exec::Executor;
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, SimClock, StorageBackend};
use nexus_testkit::dist::{PoissonArrivals, Zipf};

/// How clients issue their operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Issue the next operation the moment the previous one completes.
    Closed,
    /// Operations arrive on a Poisson schedule at this per-client rate,
    /// regardless of completions (open loop).
    Open {
        /// Mean arrivals per simulated second, per client.
        per_client_hz: f64,
    },
}

/// One scale-harness cell: N clients, each running a seeded op stream.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Simulated client count.
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Size of the shared read-only keyspace.
    pub shared_keys: usize,
    /// Object payload size in bytes.
    pub value_bytes: usize,
    /// Zipf skew over the shared keyspace (0 = uniform).
    pub zipf_alpha: f64,
    /// Fraction of operations that are shared-keyspace reads; the rest
    /// are private writes.
    pub read_fraction: f64,
    /// Run seed; per-client streams derive from it.
    pub seed: u64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Executor OS-thread budget (clamped to `nexus_exec::MAX_WORKERS`).
    pub threads: usize,
    /// Simulated network/disk cost model.
    pub latency: LatencyModel,
}

impl ScaleConfig {
    /// The standard cell: paper-calibrated latencies, Zipf(0.99) reads,
    /// half reads half writes, closed loop.
    pub fn standard(clients: usize, ops_per_client: usize) -> ScaleConfig {
        ScaleConfig {
            clients,
            ops_per_client,
            shared_keys: 512,
            value_bytes: 64,
            zipf_alpha: 0.99,
            read_fraction: 0.5,
            seed: 0x5CA1E_2026,
            arrival: Arrival::Closed,
            threads: nexus_exec::MAX_WORKERS,
            latency: LatencyModel::paper_calibrated(),
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read shared key of this Zipf rank.
    Read(usize),
    /// Write this client's private object number `k`.
    Write(usize),
}

/// Path of a shared key. (Not UUID-shaped, so it FNV-spreads across the
/// server's lock shards.)
pub fn shared_key(rank: usize) -> String {
    format!("shared/k{rank}")
}

/// Path of client `c`'s private object `k`.
pub fn private_key(c: usize, k: usize) -> String {
    format!("c{c}/w{k}")
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a `u64` draw.
pub(crate) fn f64_unit(rng: &mut SeededRandom) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The deterministic operation stream for client `c` — the *same* stream
/// both worlds execute, derived only from the config and client index.
pub fn ops_for_client(cfg: &ScaleConfig, zipf: &Zipf, c: usize) -> Vec<Op> {
    let mut rng = SeededRandom::new(cfg.seed ^ fnv1a(FNV_OFFSET, &(c as u64).to_le_bytes()));
    let mut writes = 0usize;
    (0..cfg.ops_per_client)
        .map(|_| {
            if f64_unit(&mut rng) < cfg.read_fraction {
                Op::Read(zipf.sample_with(f64_unit(&mut rng)))
            } else {
                let k = writes;
                writes += 1;
                Op::Write(k)
            }
        })
        .collect()
}

/// The deterministic open-loop arrival times for client `c` (absolute
/// offsets from the run start). Drawn from a stream salted differently
/// from the op stream so closed- and open-loop runs execute identical ops.
pub fn arrivals_for_client(cfg: &ScaleConfig, per_client_hz: f64, c: usize) -> Vec<Duration> {
    let process = PoissonArrivals::from_rate_hz(per_client_hz);
    let salt = fnv1a(FNV_OFFSET, b"arrivals");
    let mut rng = SeededRandom::new(cfg.seed ^ salt ^ fnv1a(FNV_OFFSET, &(c as u64).to_le_bytes()));
    let mut t = Duration::ZERO;
    (0..cfg.ops_per_client)
        .map(|_| {
            t += process.next_gap_with(f64_unit(&mut rng));
            t
        })
        .collect()
}

/// Folds one completed operation into a client's transcript chain. Both
/// worlds call this with the same inputs in the same per-client order, so
/// equal chains mean equal execution — independent of timing.
pub fn fold_transcript(chain: u64, op: Op, result: &[u8]) -> u64 {
    let mut h = match op {
        Op::Read(rank) => fnv1a(fnv1a(chain, b"R"), &(rank as u64).to_le_bytes()),
        Op::Write(k) => fnv1a(fnv1a(chain, b"W"), &(k as u64).to_le_bytes()),
    };
    h = fnv1a(h, &(result.len() as u64).to_le_bytes());
    fnv1a(h, result)
}

/// Deterministic digest of the server's final object inventory.
pub fn inventory_digest(server: &AfsServer) -> u64 {
    let mut inv = server.object_inventory();
    inv.sort();
    let mut h = FNV_OFFSET;
    for (path, len) in inv {
        h = fnv1a(h, path.as_bytes());
        h = fnv1a(h, &len.to_le_bytes());
    }
    h
}

/// Pre-populates the shared keyspace directly on the server's raw store
/// (outside simulated time), so every client's first read of a key is a
/// real fetch and later reads are cache hits.
pub fn populate_shared_keys(server: &AfsServer, cfg: &ScaleConfig) {
    for rank in 0..cfg.shared_keys {
        let mut value = vec![0u8; cfg.value_bytes];
        let tag = (rank as u64).to_le_bytes();
        for (i, b) in value.iter_mut().enumerate() {
            *b = tag[i % 8] ^ i as u8;
        }
        server.raw_store().put(&shared_key(rank), &value).expect("populate shared key");
    }
}

const HIST_SUB_BITS: u32 = 5;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;
// Row 0 counts 0..32 ns exactly; rows 1..=59 cover octaves 5..=63 with 32
// sub-buckets each, so the largest reachable index is 59·32 + 31.
const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize + 1) * HIST_SUB;

/// A lock-free log-bucketed latency histogram: 64 octaves × 32 sub-buckets
/// (≈3% relative resolution), covering 1 ns to `u64::MAX` ns. Recording is
/// one relaxed fetch-add, so 100k concurrent client futures share one
/// histogram without a hot lock.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn index(nanos: u64) -> usize {
        if nanos < HIST_SUB as u64 {
            // The first octaves degenerate to exact counting.
            return nanos as usize;
        }
        let msb = 63 - nanos.leading_zeros();
        let sub = (nanos >> (msb - HIST_SUB_BITS)) as usize & (HIST_SUB - 1);
        ((msb - HIST_SUB_BITS + 1) as usize) * HIST_SUB + sub
    }

    /// Lower bound of bucket `i` in nanoseconds (the quantile estimate).
    fn bucket_floor(i: usize) -> u64 {
        if i < HIST_SUB {
            return i as u64;
        }
        let octave = (i / HIST_SUB) as u32 + HIST_SUB_BITS - 1;
        let sub = (i % HIST_SUB) as u64;
        (1u64 << octave) + (sub << (octave - HIST_SUB_BITS))
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / n)
    }

    /// Exact maximum (tracked separately from the buckets).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Folds `other`'s samples into `self` — a lock-free bucket sum, so
    /// per-client histograms can aggregate at end of run without sharing
    /// a global histogram on the hot path. Merging is exact: the merged
    /// histogram is indistinguishable from one that recorded every
    /// sample directly (same buckets, count, sum, and max).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_nanos.fetch_add(other.sum_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_nanos.fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The `q`-quantile (`0.5` = p50, `0.999` = p999), resolved to the
    /// floor of the bucket holding that sample.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_nanos(Self::bucket_floor(i));
            }
        }
        self.max()
    }
}

/// Latency histograms for one run, split by operation kind.
#[derive(Debug, Default)]
pub struct RunHistograms {
    /// Shared-keyspace reads.
    pub reads: LatencyHistogram,
    /// Private writes.
    pub writes: LatencyHistogram,
    /// Every operation.
    pub all: LatencyHistogram,
}

/// The outcome of driving one scale cell through one world.
#[derive(Debug)]
pub struct ScaleReport {
    /// Simulated run duration (slowest client's lane).
    pub makespan: Duration,
    /// Total operations completed.
    pub total_ops: u64,
    /// `total_ops / makespan`, in simulated ops/sec.
    pub agg_ops_per_sec: f64,
    /// Per-kind latency distributions.
    pub hist: Arc<RunHistograms>,
    /// Per-client transcript chains (scheduling-independent).
    pub transcripts: Vec<u64>,
    /// Digest of the server's final object inventory.
    pub inventory: u64,
    /// OS threads that drove the run.
    pub os_threads: usize,
}

impl ScaleReport {
    pub(crate) fn from_world(
        makespan: Duration,
        cfg: &ScaleConfig,
        hist: Arc<RunHistograms>,
        transcripts: Vec<u64>,
        server: &AfsServer,
        os_threads: usize,
    ) -> ScaleReport {
        ScaleReport::assemble(
            makespan,
            (cfg.clients * cfg.ops_per_client) as u64,
            hist,
            transcripts,
            server,
            os_threads,
        )
    }

    /// Assembles a report from raw run outputs (shared by the wire-level
    /// and fs-level harnesses).
    pub(crate) fn assemble(
        makespan: Duration,
        total_ops: u64,
        hist: Arc<RunHistograms>,
        transcripts: Vec<u64>,
        server: &AfsServer,
        os_threads: usize,
    ) -> ScaleReport {
        let secs = makespan.as_secs_f64();
        let agg_ops_per_sec = if secs > 0.0 { total_ops as f64 / secs } else { 0.0 };
        ScaleReport {
            makespan,
            total_ops,
            agg_ops_per_sec,
            hist,
            transcripts,
            inventory: inventory_digest(server),
            os_threads,
        }
    }
}

/// Executes one client's op stream against `afs`, recording latencies and
/// returning the transcript chain. `arrivals` is `Some` for open loop.
async fn drive_client(
    afs: AsyncStorage<AfsClient>,
    ops: Vec<Op>,
    arrivals: Option<Vec<Duration>>,
    client: usize,
    value_bytes: usize,
    hist: Arc<RunHistograms>,
) -> u64 {
    let mut chain = FNV_OFFSET;
    for (k, op) in ops.into_iter().enumerate() {
        let issue = match &arrivals {
            Some(at) => {
                afs.begin_at(at[k]).await;
                at[k]
            }
            None => afs.local_now(),
        };
        let result = match op {
            Op::Read(rank) => afs.get(&shared_key(rank)).await.expect("shared read"),
            Op::Write(w) => {
                let value = vec![client as u8; value_bytes];
                afs.put(&private_key(client, w), &value).await.expect("private write");
                value
            }
        };
        let latency = afs.local_now().saturating_sub(issue);
        match op {
            Op::Read(_) => hist.reads.record(latency),
            Op::Write(_) => hist.writes.record(latency),
        }
        hist.all.record(latency);
        chain = fold_transcript(chain, op, &result);
    }
    chain
}

/// Runs one scale cell in the executor world: `cfg.clients` simulated
/// clients as futures over at most `cfg.threads` OS threads.
pub fn run_scale_exec(cfg: &ScaleConfig) -> ScaleReport {
    let server = AfsServer::new();
    let clock = SimClock::new();
    populate_shared_keys(&server, cfg);
    let zipf = Zipf::new(cfg.shared_keys, cfg.zipf_alpha);
    let hist = Arc::new(RunHistograms::default());
    let ex = Executor::new(clock.clone(), cfg.threads);
    let os_threads = ex.os_threads();

    let t0 = clock.now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            // One cache shard per simulated client: its cache has no
            // internal contention, and 16 mutexes × 100k clients is pure
            // memory overhead.
            let afs = AsyncStorage::new(
                Arc::new(AfsClient::connect_with_cache_shards(
                    &server,
                    clock.clone(),
                    cfg.latency,
                    1,
                )),
                ex.timer(),
            );
            let ops = ops_for_client(cfg, &zipf, c);
            let arrivals = match cfg.arrival {
                Arrival::Closed => None,
                Arrival::Open { per_client_hz } => {
                    Some(arrivals_for_client(cfg, per_client_hz, c))
                }
            };
            ex.spawn(drive_client(afs, ops, arrivals, c, cfg.value_bytes, hist.clone()))
        })
        .collect();
    ex.run_until_idle();
    let makespan = clock.now() - t0;

    let transcripts =
        handles.iter().map(|h| h.try_take().expect("client completed")).collect();
    ScaleReport::from_world(makespan, cfg, hist, transcripts, &server, os_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotonic_and_indexable() {
        // Every sample lands in a bucket whose floor does not exceed it,
        // and bucket floors are non-decreasing in the index.
        for nanos in [0u64, 1, 31, 32, 33, 1000, 123_456, u64::MAX / 2] {
            let i = LatencyHistogram::index(nanos);
            assert!(i < HIST_BUCKETS, "{nanos}");
            assert!(LatencyHistogram::bucket_floor(i) <= nanos, "{nanos}");
        }
        let mut prev = 0u64;
        for i in 0..HIST_BUCKETS {
            let floor = LatencyHistogram::bucket_floor(i);
            assert!(floor >= prev, "bucket {i}");
            prev = floor;
        }
    }

    #[test]
    fn histogram_quantiles_bracket_known_distribution() {
        let h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        // Log buckets are ~3% wide; allow 5%.
        assert!((p50.as_nanos() as f64 - 500_000.0).abs() < 25_000.0, "{p50:?}");
        assert!((p99.as_nanos() as f64 - 990_000.0).abs() < 50_000.0, "{p99:?}");
        assert!(p50 <= p99 && p99 <= p999, "{p50:?} {p99:?} {p999:?}");
        assert_eq!(h.max(), Duration::from_millis(1));
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn merged_histograms_equal_one_shared_histogram() {
        // Per-client recording + merge must be indistinguishable from
        // every sample landing in one shared histogram: same count,
        // mean, max, and every quantile.
        let mut rng = SeededRandom::new(0xACC0);
        let shared = LatencyHistogram::new();
        let parts: Vec<LatencyHistogram> =
            (0..7).map(|_| LatencyHistogram::new()).collect();
        for i in 0..5000u64 {
            // Skewed spread across 9 orders of magnitude.
            let nanos = (rng.next_u64() % 1_000_000_000).saturating_pow(1) >> (i % 20);
            let sample = Duration::from_nanos(nanos);
            shared.record(sample);
            parts[(i % 7) as usize].record(sample);
        }
        let merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), shared.count());
        assert_eq!(merged.mean(), shared.mean());
        assert_eq!(merged.max(), shared.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), shared.quantile(q), "q={q}");
        }
        // Merging an empty histogram changes nothing.
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged.count(), shared.count());
        assert_eq!(merged.quantile(0.5), shared.quantile(0.5));
    }

    #[test]
    fn op_streams_are_deterministic_and_respect_the_mix() {
        let cfg = ScaleConfig::standard(4, 1000);
        let zipf = Zipf::new(cfg.shared_keys, cfg.zipf_alpha);
        let a = ops_for_client(&cfg, &zipf, 2);
        let b = ops_for_client(&cfg, &zipf, 2);
        assert_eq!(a, b, "same client, same stream");
        assert_ne!(a, ops_for_client(&cfg, &zipf, 3), "clients diverge");
        let reads = a.iter().filter(|op| matches!(op, Op::Read(_))).count();
        // 1000 ops at read_fraction 0.5: binomial ±~5σ bound.
        assert!((420..=580).contains(&reads), "{reads} reads of 1000");
    }

    #[test]
    fn arrival_times_are_increasing_and_deterministic() {
        let cfg = ScaleConfig::standard(2, 100);
        let a = arrivals_for_client(&cfg, 50.0, 0);
        assert_eq!(a, arrivals_for_client(&cfg, 50.0, 0));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap 20 ms over 100 arrivals: the last lands around 2 s.
        assert!(a[99] > Duration::from_millis(500) && a[99] < Duration::from_secs(8), "{:?}", a[99]);
    }

    #[test]
    fn exec_world_runs_a_small_cell() {
        let mut cfg = ScaleConfig::standard(50, 8);
        cfg.threads = 2;
        let report = run_scale_exec(&cfg);
        assert_eq!(report.total_ops, 400);
        assert_eq!(report.transcripts.len(), 50);
        assert!(report.os_threads <= nexus_exec::MAX_WORKERS);
        assert!(report.makespan > Duration::ZERO);
        assert!(report.agg_ops_per_sec > 0.0);
        assert_eq!(report.hist.all.count(), 400);
        assert_eq!(
            report.hist.reads.count() + report.hist.writes.count(),
            report.hist.all.count()
        );
        // Same config, fresh world: identical transcripts and inventory.
        let again = run_scale_exec(&cfg);
        assert_eq!(report.transcripts, again.transcripts);
        assert_eq!(report.inventory, again.inventory);
    }

    #[test]
    fn open_loop_records_queueing_delay() {
        // Arrivals far faster than service: closed loop would hide the
        // backlog (coordinated omission); open loop must surface it as
        // tail latency well above one op's service time.
        let mut cfg = ScaleConfig::standard(4, 32);
        cfg.threads = 1;
        cfg.arrival = Arrival::Open { per_client_hz: 10_000.0 };
        let report = run_scale_exec(&cfg);
        let service = cfg.latency.rpc_cost(cfg.value_bytes);
        assert!(
            report.hist.all.quantile(0.99) > service * 4,
            "p99 {:?} vs one-op service {:?}",
            report.hist.all.quantile(0.99),
            service
        );
    }
}
