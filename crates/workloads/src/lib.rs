//! # nexus-workloads
//!
//! Workload generators reproducing the NEXUS evaluation (paper §VII):
//!
//! - [`bench_fs`] — the [`bench_fs::BenchFs`] abstraction letting every
//!   workload run identically over NEXUS and the unmodified-OpenAFS
//!   baseline, with the paper's simulated-I/O vs enclave-time breakdown;
//! - [`harness`] — one-call experimental rigs;
//! - [`fileio`] — the file I/O and flat-directory microbenchmarks
//!   (Tables 5a/5b);
//! - [`repos`] — deterministic synthetic git trees with the published
//!   redis/julia/nodejs shapes (Fig. 5c);
//! - [`dbbench`] — LevelDB- and SQLite-style database workloads
//!   (Table II);
//! - [`apps`] — tar/du/grep/cp/mv over the LFSD/MFMD/SFLD workloads
//!   (Table III, Fig. 6);
//! - [`loadgen`] / [`loadgen_baseline`] — the massive-scale load harness:
//!   seeded Zipf/Poisson op streams driven either as futures on the
//!   `nexus-exec` executor (100k clients, ≤ 8 OS threads) or as the
//!   thread-per-client baseline world (DESIGN.md §14);
//! - [`loadgen_fs`] — the same harness one layer up: full enclave
//!   clients (real `NexusVolume` mounts) as futures on the executor,
//!   against a serial oracle and a thread-per-client fs baseline
//!   (DESIGN.md §15).

pub mod apps;
pub mod bench_fs;
pub mod dbbench;
pub mod fileio;
pub mod harness;
pub mod loadgen;
pub mod loadgen_baseline;
pub mod loadgen_fs;
pub mod repos;

pub use bench_fs::{measure, BenchFs, FsClock, NexusFs, PlainAfs, Sample, WorkloadError};
pub use harness::TestRig;
