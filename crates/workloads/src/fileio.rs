//! File I/O microbenchmark (paper Table 5a).
//!
//! Writes a single file of a given size and reads it back after flushing
//! the client cache, so both directions cross the (simulated) network —
//! exactly the paper's python read/write utility with a flushed AFS cache.

use nexus_crypto::rng::{SecureRandom, SeededRandom};

use crate::bench_fs::{measure, BenchFs, Result, Sample};

/// Result of one file I/O run.
#[derive(Debug, Clone, Copy)]
pub struct FileIoResult {
    /// File size exercised.
    pub size: u64,
    /// Cost of writing (and flushing) the file.
    pub write: Sample,
    /// Cost of a cold read of the file.
    pub read: Sample,
}

impl FileIoResult {
    /// Combined write+read sample (the paper's single latency number).
    pub fn combined(&self) -> Sample {
        let mut s = self.write;
        s.add(self.read);
        s
    }
}

/// Fills `dest` with deterministic pseudo-random bytes — the
/// allocation-free form of [`file_contents`] for benches that reuse one
/// buffer across sizes.
pub fn fill_deterministic(dest: &mut [u8], seed: u64) {
    SeededRandom::new(seed).fill(dest);
}

/// Deterministic pseudo-random file contents.
pub fn file_contents(size: usize, seed: u64) -> Vec<u8> {
    let mut data = vec![0u8; size];
    fill_deterministic(&mut data, seed);
    data
}

/// Runs the write+read cycle for one file size.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn run_file_io(fs: &dyn BenchFs, size: u64) -> Result<FileIoResult> {
    let data = file_contents(size as usize, size);
    let path = format!("bench-file-{size}");
    let write = measure(fs, || fs.write_file(&path, &data))?;
    fs.flush_caches();
    let read = measure(fs, || {
        let got = fs.read_file(&path)?;
        assert_eq!(got.len(), data.len(), "short read");
        Ok(())
    })?;
    fs.remove(&path)?;
    Ok(FileIoResult { size, write, read })
}

/// Directory-operations microbenchmark (paper Table 5b): creates `n` empty
/// files in one flat directory, then deletes them all.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn run_dir_ops(fs: &dyn BenchFs, n: usize) -> Result<Sample> {
    fs.mkdir_all("flat")?;
    let create = measure(fs, || {
        for i in 0..n {
            fs.write_file(&format!("flat/f{i:05}"), b"")?;
        }
        Ok(())
    })?;
    let delete = measure(fs, || {
        for i in 0..n {
            fs.remove(&format!("flat/f{i:05}"))?;
        }
        Ok(())
    })?;
    let mut total = create;
    total.add(delete);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TestRig;

    #[test]
    fn file_io_roundtrips_on_both_systems() {
        let rig = TestRig::fast();
        for fs in [&rig.nexus_fs() as &dyn BenchFs, &rig.plain_afs()] {
            let r = run_file_io(fs, 64 * 1024).unwrap();
            assert_eq!(r.size, 64 * 1024);
        }
    }

    #[test]
    fn nexus_slower_than_afs_on_dir_ops() {
        // The paper's core observation: metadata-intensive operations cost
        // NEXUS several RPCs where AFS pays one.
        let rig = TestRig::default_latency();
        let nexus = rig.nexus_fs();
        let afs = rig.plain_afs();
        let n = 64;
        let nexus_t = run_dir_ops(&nexus, n).unwrap().sim_io;
        let afs_t = run_dir_ops(&afs, n).unwrap().sim_io;
        assert!(
            nexus_t > afs_t,
            "nexus {nexus_t:?} should exceed afs {afs_t:?} on directory ops"
        );
    }

    #[test]
    fn contents_are_deterministic() {
        assert_eq!(file_contents(100, 5), file_contents(100, 5));
        assert_ne!(file_contents(100, 5), file_contents(100, 6));
    }
}
