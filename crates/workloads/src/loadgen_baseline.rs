//! Thread-per-client baseline world for the scale harness.
//!
//! Identical workload to [`crate::loadgen::run_scale_exec`] — same seeded
//! per-client op streams, same shared keyspace, same transcript folding —
//! but every simulated client gets a real OS thread and drives the
//! synchronous [`AfsClient`] directly. This is the world the executor is
//! benchmarked against: it cannot reach 100k clients (the OS falls over
//! long before), which is exactly the point `BENCH_scale.json` records.
//!
//! Kept in its own module because `scripts/verify.sh` greps the executor
//! world (`loadgen.rs`, `micro_scale.rs`) for the *absence* of
//! `thread::spawn` / `ThreadPool` — the baseline is the one place allowed
//! to burn a thread per client.

use std::sync::Arc;

use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{SimClock, StorageBackend};
use nexus_testkit::dist::Zipf;

use crate::loadgen::{
    fold_transcript, ops_for_client, populate_shared_keys, private_key, shared_key, Op,
    RunHistograms, ScaleConfig, ScaleReport,
};
use crate::loadgen_fs::{
    apply_fs_op, build_fs_world, fold_fs_transcript, fs_ops_for_client, FsOp, FsScaleConfig,
};

/// Runs one scale cell with an OS thread per simulated client (closed
/// loop only — the baseline exists to pin aggregate throughput, and a
/// thread blocked in a Poisson sleep would need the very timer wheel the
/// baseline is defined not to have).
pub fn run_scale_threads(cfg: &ScaleConfig) -> ScaleReport {
    assert!(
        cfg.arrival == crate::loadgen::Arrival::Closed,
        "the thread-per-client baseline is closed-loop only"
    );
    let server = AfsServer::new();
    let clock = SimClock::new();
    populate_shared_keys(&server, cfg);
    let zipf = Zipf::new(cfg.shared_keys, cfg.zipf_alpha);
    let hist = Arc::new(RunHistograms::default());

    // Build every client before the first thread starts: a new lane is
    // born at the *current* shared-clock value, so constructing client N
    // while client N−1's thread is already charging RPCs would hand late
    // clients a head-started lane and inflate the makespan.
    let clients: Vec<AfsClient> = (0..cfg.clients)
        .map(|_| AfsClient::connect_with_cache_shards(&server, clock.clone(), cfg.latency, 1))
        .collect();
    let t0 = clock.now();
    let mut transcripts = vec![0u64; cfg.clients];
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(cfg.clients);
        for (c, client) in clients.into_iter().enumerate() {
            let ops = ops_for_client(cfg, &zipf, c);
            let hist = hist.clone();
            let value_bytes = cfg.value_bytes;
            joins.push(scope.spawn(move || {
                let mut chain = 0xcbf2_9ce4_8422_2325u64;
                for op in ops {
                    let issue = client.lane().local_now();
                    let result = match op {
                        Op::Read(rank) => client.get(&shared_key(rank)).expect("shared read"),
                        Op::Write(w) => {
                            let value = vec![c as u8; value_bytes];
                            client.put(&private_key(c, w), &value).expect("private write");
                            value
                        }
                    };
                    let latency = client.lane().local_now().saturating_sub(issue);
                    match op {
                        Op::Read(_) => hist.reads.record(latency),
                        Op::Write(_) => hist.writes.record(latency),
                    }
                    hist.all.record(latency);
                    chain = fold_transcript(chain, op, &result);
                }
                chain
            }));
        }
        for (c, join) in joins.into_iter().enumerate() {
            transcripts[c] = join.join().expect("baseline client thread");
        }
    });
    let makespan = clock.now() - t0;
    ScaleReport::from_world(makespan, cfg, hist, transcripts, &server, cfg.clients)
}

/// Runs one *fs-level* scale cell with an OS thread per mounted enclave
/// client (closed loop only, like [`run_scale_threads`]). Same world
/// construction and per-op lane arithmetic as the async fs world — the
/// only difference is the scheduling substrate. Per-thread latency
/// histograms are merged into the run-wide set at join time via
/// [`LatencyHistogram::merge`](crate::loadgen::LatencyHistogram::merge).
pub fn run_fs_scale_threads(cfg: &FsScaleConfig) -> ScaleReport {
    assert!(
        cfg.arrival == crate::loadgen::Arrival::Closed,
        "the thread-per-client fs baseline is closed-loop only"
    );
    let world = build_fs_world(cfg);
    let zipf = Zipf::new(cfg.shared_files, cfg.zipf_alpha);
    let hist = Arc::new(RunHistograms::default());

    let t0 = world.clock.now();
    let mut transcripts = vec![0u64; cfg.clients];
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(cfg.clients);
        for (c, fsc) in world.clients.iter().enumerate() {
            let ops = fs_ops_for_client(cfg, &zipf, c);
            joins.push(scope.spawn(move || {
                let local = RunHistograms::default();
                let mut chain = 0xcbf2_9ce4_8422_2325u64;
                for op in ops {
                    let issue = fsc.afs.lane().local_now();
                    let result = apply_fs_op(cfg, fsc, c, op);
                    let latency = fsc.afs.lane().local_now().saturating_sub(issue);
                    match op {
                        FsOp::Read(_) | FsOp::Bulk(_) => local.reads.record(latency),
                        FsOp::Write(_) | FsOp::Acl(_) => local.writes.record(latency),
                    }
                    local.all.record(latency);
                    chain = fold_fs_transcript(chain, op, &result);
                }
                (chain, local)
            }));
        }
        for (c, join) in joins.into_iter().enumerate() {
            let (chain, local) = join.join().expect("baseline fs client thread");
            transcripts[c] = chain;
            hist.reads.merge(&local.reads);
            hist.writes.merge(&local.writes);
            hist.all.merge(&local.all);
        }
    });
    let makespan = world.clock.now() - t0;
    let total = (cfg.clients * cfg.ops_per_client) as u64;
    ScaleReport::assemble(makespan, total, hist, transcripts, &world.server, cfg.clients)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::run_scale_exec;

    #[test]
    fn both_worlds_execute_identical_transcripts() {
        // The core scale-harness invariant: swapping the scheduling
        // substrate (futures on a bounded executor vs. a thread per
        // client) changes *nothing* about what executed — per-client
        // transcript chains and the final server inventory are equal.
        let mut cfg = ScaleConfig::standard(24, 12);
        cfg.threads = 4;
        let exec = run_scale_exec(&cfg);
        let threads = run_scale_threads(&cfg);
        assert_eq!(exec.transcripts, threads.transcripts);
        assert_eq!(exec.inventory, threads.inventory);
        assert_eq!(exec.total_ops, threads.total_ops);
        assert_eq!(exec.hist.all.count(), threads.hist.all.count());
        // And both worlds overlap client lanes, so the simulated makespan
        // is per-client work, not the sum over clients.
        assert_eq!(exec.makespan, threads.makespan);
        // The baseline burned a thread per client; the executor did not.
        assert_eq!(threads.os_threads, cfg.clients);
        assert!(exec.os_threads <= nexus_exec::MAX_WORKERS);
    }
}
