//! Linux application simulations (paper Table III + Fig. 6).
//!
//! The paper measures `tar -x`, `du`, `grep`, `tar -c`, `cp`, and `mv` over
//! three characteristic workloads. Each utility reduces to a well-defined
//! sequence of filesystem calls, which this module issues against a
//! [`BenchFs`] so the identical "application" runs over NEXUS and the
//! OpenAFS baseline.

use nexus_crypto::rng::{SecureRandom, SeededRandom};

use crate::bench_fs::{measure, BenchFs, Result, Sample};

/// One of the paper's characteristic workloads (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Short code (LFSD / MFMD / SFLD).
    pub code: &'static str,
    /// Long name as in the paper.
    pub description: &'static str,
    /// Number of files.
    pub files: usize,
    /// Bytes per file at scale 1.0.
    pub file_size: u64,
}

/// Large Files and Small Directory: 32 files, 3.2 GB total.
pub const LFSD: WorkloadProfile = WorkloadProfile {
    code: "LFSD",
    description: "large-file-small-dir",
    files: 32,
    file_size: 100 * 1024 * 1024,
};

/// Medium Files and Medium Directory: 256 files, 2.5 GB total.
pub const MFMD: WorkloadProfile = WorkloadProfile {
    code: "MFMD",
    description: "medium-file-medium-dir",
    files: 256,
    file_size: 10 * 1024 * 1024,
};

/// Small Files and Large Directory: 1024 files, 10 MB total.
pub const SFLD: WorkloadProfile = WorkloadProfile {
    code: "SFLD",
    description: "small-file-large-dir",
    files: 1024,
    file_size: 10 * 1024,
};

/// The archive contents a run works with: (name, contents) pairs.
#[derive(Debug, Clone)]
pub struct Archive {
    /// Directory the workload lives in.
    pub root: String,
    /// File names (relative to root) and their sizes.
    pub files: Vec<(String, u64)>,
    /// Profile scale factor applied.
    pub scale: f64,
}

impl Archive {
    /// Materializes the file list for `profile` at `scale` (sizes scale,
    /// counts do not — counts drive the metadata costs Fig. 6 is about).
    pub fn for_profile(profile: &WorkloadProfile, scale: f64) -> Archive {
        let files = (0..profile.files)
            .map(|i| {
                let size = ((profile.file_size as f64 * scale) as u64).max(64);
                (format!("doc{i:05}.txt"), size)
            })
            .collect();
        Archive { root: profile.description.to_string(), files, scale }
    }

    /// Total plaintext bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|(_, s)| s).sum()
    }
}

/// Deterministic printable file contents, with occasional search hits for
/// `grep`.
pub fn app_file_contents(size: u64, seed: u64) -> Vec<u8> {
    let mut rng = SeededRandom::new(seed);
    let mut out = Vec::with_capacity(size as usize);
    const WORDS: &[&str] = &["storage", "enclave", "secure", "policy", "javascript", "volume"];
    while (out.len() as u64) < size {
        let w = WORDS[rng.usize_below(WORDS.len())];
        out.extend_from_slice(w.as_bytes());
        out.push(b' ');
    }
    out.truncate(size as usize);
    out
}

/// `tar -x`: extract the archive — create the directory then write every
/// file.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn tar_extract(fs: &dyn BenchFs, archive: &Archive) -> Result<Sample> {
    measure(fs, || {
        fs.mkdir_all(&archive.root)?;
        for (i, (name, size)) in archive.files.iter().enumerate() {
            let data = app_file_contents(*size, i as u64);
            fs.write_file(&format!("{}/{name}", archive.root), &data)?;
        }
        Ok(())
    })
}

/// `du`: walk the tree and stat every file's size.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn du(fs: &dyn BenchFs, root: &str) -> Result<(u64, Sample)> {
    let mut total = 0u64;
    let sample = measure(fs, || {
        let mut stack = vec![root.to_string()];
        while let Some(dir) = stack.pop() {
            let subdirs = fs.list_subdirs(&dir)?;
            for entry in fs.list_dir(&dir)? {
                let path = format!("{dir}/{entry}");
                if subdirs.contains(&entry) {
                    stack.push(path);
                } else {
                    total += fs.stat_size(&path)?;
                }
            }
        }
        Ok(())
    })?;
    Ok((total, sample))
}

/// `grep -r term`: read every file and count matches.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn grep(fs: &dyn BenchFs, root: &str, term: &str) -> Result<(usize, Sample)> {
    let mut hits = 0usize;
    let needle = term.as_bytes();
    let sample = measure(fs, || {
        let mut stack = vec![root.to_string()];
        while let Some(dir) = stack.pop() {
            let subdirs = fs.list_subdirs(&dir)?;
            for entry in fs.list_dir(&dir)? {
                let path = format!("{dir}/{entry}");
                if subdirs.contains(&entry) {
                    stack.push(path);
                } else {
                    let data = fs.read_file(&path)?;
                    hits += data
                        .windows(needle.len().max(1))
                        .filter(|w| *w == needle)
                        .count();
                }
            }
        }
        Ok(())
    })?;
    Ok((hits, sample))
}

/// `tar -c`: read every file and write one archive blob.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn tar_create(fs: &dyn BenchFs, root: &str, out_path: &str) -> Result<Sample> {
    measure(fs, || {
        let mut blob: Vec<u8> = Vec::new();
        let mut stack = vec![root.to_string()];
        while let Some(dir) = stack.pop() {
            let subdirs = fs.list_subdirs(&dir)?;
            for entry in fs.list_dir(&dir)? {
                let path = format!("{dir}/{entry}");
                if subdirs.contains(&entry) {
                    stack.push(path);
                } else {
                    let data = fs.read_file(&path)?;
                    blob.extend_from_slice(path.as_bytes());
                    blob.extend_from_slice(&(data.len() as u64).to_le_bytes());
                    blob.extend_from_slice(&data);
                }
            }
        }
        fs.write_file(out_path, &blob)
    })
}

/// `cp`: duplicate one file.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn cp(fs: &dyn BenchFs, src: &str, dst: &str) -> Result<Sample> {
    measure(fs, || {
        let data = fs.read_file(src)?;
        fs.write_file(dst, &data)
    })
}

/// `mv`: rename one file.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn mv(fs: &dyn BenchFs, from: &str, to: &str) -> Result<Sample> {
    measure(fs, || fs.rename(from, to))
}

/// Latency of all six applications on one workload (one Fig. 6 panel row).
#[derive(Debug, Clone, Copy)]
pub struct AppRun {
    /// tar -x.
    pub tar_x: Sample,
    /// du.
    pub du: Sample,
    /// grep.
    pub grep: Sample,
    /// tar -c.
    pub tar_c: Sample,
    /// cp.
    pub cp: Sample,
    /// mv.
    pub mv: Sample,
}

/// Runs the full application suite over `profile` at `scale`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn run_app_suite(fs: &dyn BenchFs, profile: &WorkloadProfile, scale: f64) -> Result<AppRun> {
    let archive = Archive::for_profile(profile, scale);
    let root = archive.root.clone();
    let tar_x = tar_extract(fs, &archive)?;
    fs.flush_caches();
    let (_, du_s) = du(fs, &root)?;
    fs.flush_caches();
    let (_, grep_s) = grep(fs, &root, "javascript")?;
    fs.flush_caches();
    let tar_c = tar_create(fs, &root, &format!("{root}.tar"))?;
    let first = format!("{root}/{}", archive.files[0].0);
    let cp_s = cp(fs, &first, &format!("{root}/copy.bin"))?;
    let mv_s = mv(fs, &format!("{root}/copy.bin"), &format!("{root}/moved.bin"))?;
    Ok(AppRun { tar_x, du: du_s, grep: grep_s, tar_c, cp: cp_s, mv: mv_s })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TestRig;

    #[test]
    fn profiles_match_paper() {
        assert_eq!(LFSD.files, 32);
        assert_eq!(LFSD.file_size * LFSD.files as u64, 3_355_443_200); // 3.2 GiB
        assert_eq!(MFMD.files, 256);
        assert_eq!(SFLD.files, 1024);
        assert_eq!(SFLD.file_size * SFLD.files as u64, 10 * 1024 * 1024); // 10 MiB
    }

    #[test]
    fn full_suite_runs_on_both_systems() {
        let rig = TestRig::fast();
        let profile = WorkloadProfile { files: 6, file_size: 4096, ..SFLD };
        for fs in [&rig.nexus_fs() as &dyn BenchFs, &rig.plain_afs()] {
            let run = run_app_suite(fs, &profile, 1.0).unwrap();
            assert!(run.tar_x.real > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn du_counts_all_bytes() {
        let rig = TestRig::fast();
        let fs = rig.nexus_fs();
        let profile = WorkloadProfile { files: 5, file_size: 1000, ..SFLD };
        let archive = Archive::for_profile(&profile, 1.0);
        tar_extract(&fs, &archive).unwrap();
        let (total, _) = du(&fs, &archive.root).unwrap();
        assert_eq!(total, 5000);
    }

    #[test]
    fn grep_finds_planted_terms() {
        let rig = TestRig::fast();
        let fs = rig.plain_afs();
        let profile = WorkloadProfile { files: 3, file_size: 10_000, ..SFLD };
        let archive = Archive::for_profile(&profile, 1.0);
        tar_extract(&fs, &archive).unwrap();
        let (hits, _) = grep(&fs, &archive.root, "javascript").unwrap();
        assert!(hits > 0, "the word bank plants the term");
    }

    #[test]
    fn tar_create_produces_archive_of_all_contents() {
        let rig = TestRig::fast();
        let fs = rig.nexus_fs();
        let profile = WorkloadProfile { files: 4, file_size: 500, ..SFLD };
        let archive = Archive::for_profile(&profile, 1.0);
        tar_extract(&fs, &archive).unwrap();
        tar_create(&fs, &archive.root, "out.tar").unwrap();
        let blob = fs.read_file("out.tar").unwrap();
        assert!(blob.len() as u64 > archive.total_bytes());
    }
}
