//! Differential property test: async-interleaved execution on the
//! `nexus-exec` executor produces exactly the transcripts of a serial
//! oracle, under explicit cross-client causality through `ClockLane`
//! virtual time (the PR 4 differential pattern, lifted to the executor).
//!
//! A case is a list of timed events: event `i` is issued by one of a few
//! clients at virtual time `(i+1)·STEP` — strictly increasing, so list
//! order *is* issue order. The async world runs each client as a future on
//! a deterministic single-thread executor, using `begin_at` to hold every
//! op until its virtual issue time; the serial oracle executes the same
//! list in order on plain sync clients, raising each lane by hand. Both
//! worlds must agree on every per-op result, every client's final lane
//! time, the server's object inventory, and the shared clock.
//!
//! Reads here cross client boundaries on purpose (unlike the scale
//! harness, where commuting ops are a design choice): a client may read
//! another client's freshest write, which is only deterministic because
//! the timer wheel fires `begin_at` wakeups in exact virtual-deadline
//! order.

use std::sync::Arc;
use std::time::Duration;

use nexus_exec::io::AsyncStorage;
use nexus_exec::Executor;
use nexus_storage::afs::{AfsClient, AfsServer};
use nexus_storage::{LatencyModel, SimClock, StorageBackend};
use nexus_testkit::Runner;

const CLIENTS: usize = 3;
const STEP: Duration = Duration::from_millis(5);

/// One scripted event: client `c` performs `op` on shared key `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Put,
    Get,
    Stat,
}

type Event = (u8, OpKind, u8);

/// What one op observed, in a timing-free form.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Put,
    Got(Option<Vec<u8>>),
    Sized(Option<u64>),
}

fn key_path(key: u8) -> String {
    format!("obj/k{}", key % 4)
}

fn value_for(c: u8, i: usize) -> Vec<u8> {
    vec![c, i as u8, 0xA5, (i / 256) as u8]
}

fn issue_time(i: usize) -> Duration {
    STEP * (i as u32 + 1)
}

/// The per-event observation plus end-of-run state for one world.
#[derive(Debug, PartialEq)]
struct WorldOutcome {
    observed: Vec<Observed>,
    lane_ends: Vec<Duration>,
    inventory: Vec<(String, u64)>,
    clock_end: Duration,
}

fn apply(client: &AfsClient, op: OpKind, key: u8, c: u8, i: usize) -> Observed {
    match op {
        OpKind::Put => {
            client.put(&key_path(key), &value_for(c, i)).expect("put");
            Observed::Put
        }
        OpKind::Get => Observed::Got(client.get(&key_path(key)).ok()),
        OpKind::Stat => Observed::Sized(client.stat(&key_path(key)).ok().map(|s| s.size)),
    }
}

/// Serial oracle: executes the script in list order on the calling
/// thread, raising each client's lane to the event's issue time first.
fn run_serial(script: &[Event]) -> WorldOutcome {
    let server = AfsServer::new();
    let clock = SimClock::new();
    let latency = LatencyModel::paper_calibrated();
    let clients: Vec<AfsClient> = (0..CLIENTS)
        .map(|_| AfsClient::connect(&server, clock.clone(), latency))
        .collect();
    let observed = script
        .iter()
        .enumerate()
        .map(|(i, &(c, op, key))| {
            let client = &clients[c as usize % CLIENTS];
            client.lane().raise_to(issue_time(i));
            apply(client, op, key, c % CLIENTS as u8, i)
        })
        .collect();
    WorldOutcome {
        observed,
        lane_ends: clients.iter().map(|cl| cl.lane().local_now()).collect(),
        inventory: sorted_inventory(&server),
        clock_end: clock.now(),
    }
}

/// Async world: one future per client, each holding every op until its
/// virtual issue time with `begin_at`, on a deterministic single-thread
/// executor. Events interleave across clients purely by timer-wheel order.
fn run_async(script: &[Event]) -> WorldOutcome {
    let server = AfsServer::new();
    let clock = SimClock::new();
    let latency = LatencyModel::paper_calibrated();
    let ex = Executor::single(clock.clone());

    let storages: Vec<AsyncStorage<AfsClient>> = (0..CLIENTS)
        .map(|_| {
            AsyncStorage::new(
                Arc::new(AfsClient::connect(&server, clock.clone(), latency)),
                ex.timer(),
            )
        })
        .collect();
    // Split the script into per-client (event index, op, key) streams;
    // within a client, issue times increase, so a sequential future
    // suffices.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let events: Vec<(usize, OpKind, u8)> = script
                .iter()
                .enumerate()
                .filter(|(_, &(ec, _, _))| ec as usize % CLIENTS == c)
                .map(|(i, &(_, op, key))| (i, op, key))
                .collect();
            let afs = storages[c].clone();
            ex.spawn(async move {
                let mut out = Vec::with_capacity(events.len());
                for (i, op, key) in events {
                    afs.begin_at(issue_time(i)).await;
                    let obs = match op {
                        OpKind::Put => {
                            afs.put(&key_path(key), &value_for(c as u8, i))
                                .await
                                .expect("put");
                            Observed::Put
                        }
                        OpKind::Get => Observed::Got(afs.get(&key_path(key)).await.ok()),
                        OpKind::Stat => {
                            Observed::Sized(afs.stat(&key_path(key)).await.ok().map(|s| s.size))
                        }
                    };
                    out.push((i, obs));
                }
                out
            })
        })
        .collect();
    ex.run_until_idle();

    let mut observed = vec![Observed::Put; script.len()];
    for h in &handles {
        for (i, obs) in h.try_take().expect("client future completed") {
            observed[i] = obs;
        }
    }
    WorldOutcome {
        observed,
        lane_ends: storages.iter().map(|s| s.backend().lane().local_now()).collect(),
        inventory: sorted_inventory(&server),
        clock_end: clock.now(),
    }
}

fn sorted_inventory(server: &AfsServer) -> Vec<(String, u64)> {
    let mut inv = server.object_inventory();
    inv.sort();
    inv
}

fn gen_event(g: &mut nexus_testkit::Gen) -> Event {
    let c = g.usize_below(CLIENTS) as u8;
    let op = match g.usize_below(4) {
        0 | 1 => OpKind::Put,
        2 => OpKind::Get,
        _ => OpKind::Stat,
    };
    let key = g.usize_below(4) as u8;
    (c, op, key)
}

#[test]
fn async_interleaving_matches_the_serial_oracle() {
    let runner = Runner::new("exec_differential").cases(60);
    runner.run(
        |g| {
            let len = g.usize_in(1, 24);
            (0..len).map(|_| gen_event(g)).collect::<Vec<Event>>()
        },
        |script| nexus_testkit::shrink::ops(script),
        |script| {
            let serial = run_serial(script);
            let async_world = run_async(script);
            if serial != async_world {
                return Err(format!(
                    "worlds diverged for {script:?}:\n serial {serial:?}\n async  {async_world:?}"
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn cross_client_write_then_read_is_causal_in_both_worlds() {
    // Pinned regression: client 0 writes key 1 at t=5ms; client 1 reads it
    // at t=10ms and must observe the write (plus its availability time)
    // identically in both worlds, because the reader's lane is raised to
    // the writer's record time before the RPC is charged.
    let script: Vec<Event> =
        vec![(0, OpKind::Put, 1), (1, OpKind::Get, 1), (2, OpKind::Stat, 1)];
    let serial = run_serial(&script);
    let async_world = run_async(&script);
    assert_eq!(serial, async_world);
    match &serial.observed[1] {
        Observed::Got(Some(v)) => assert_eq!(v, &value_for(0, 0)),
        other => panic!("reader missed the write: {other:?}"),
    }
    // The reader paid the writer-availability raise: its lane ends at or
    // after the writer's commit time plus one RPC.
    let write_done = serial.lane_ends[0];
    assert!(
        serial.lane_ends[1] >= write_done,
        "reader lane {:?} ended before writer lane {write_done:?}",
        serial.lane_ends[1]
    );
}
