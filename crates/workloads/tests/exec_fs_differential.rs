//! Differential property test for the *crypto-fs* async layer
//! (DESIGN.md §15), registered by target name in `scripts/verify.sh`:
//! full enclave clients ([`NexusVolume`] mounts) interleaved as futures
//! on the executor must execute byte-for-byte what a serial oracle
//! executes — mixed metadata and data ops, including reads that cross
//! client boundaries.
//!
//! A case is a list of timed fs events: event `i` is issued by one of a
//! few mounted clients at virtual time `(i+1)·STEP`. `STEP` is chosen
//! far above any single fs op's modelled cost (several RPCs plus the
//! modelled crypto charge), and the serial oracle *asserts* that no op
//! overruns it — so issue order is execution order in both worlds, and
//! a cost-model change that breaks this premise fails loudly instead of
//! surfacing as a mystery divergence.
//!
//! Unlike the scale harness (whose op mix commutes by design), clients
//! here write and read the *same* shared files: a reader observes
//! another client's freshest write — freshness-validated through the
//! version stats of the metadata cache — identically in both worlds.

use std::time::Duration;

use nexus_core::async_fs::AsyncVolume;
use nexus_core::Rights;
use nexus_exec::Executor;
use nexus_testkit::Runner;
use nexus_workloads::loadgen::inventory_digest;
use nexus_workloads::loadgen_fs::{build_fs_world, shared_file, FsScaleConfig, FsWorld};

const CLIENTS: usize = 3;
const SHARED: usize = 4;
const STEP: Duration = Duration::from_millis(250);

/// One scripted fs event kind for client `c` on shared slot `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FsKind {
    /// Write `shared/f{key}` (cross-client visible).
    Write,
    /// Read `shared/f{key}`.
    Read,
    /// Batched read of `shared/f{key}` and its successor.
    Bulk,
    /// Freshness-checked metadata lookup of `shared/f{key}`.
    Lookup,
    /// Toggle the auditor's rights on the client's own directory.
    Acl,
}

type Event = (u8, FsKind, u8);

/// What one op observed, stripped of timing.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Wrote(bool),
    Got(Option<Vec<u8>>),
    BulkGot(Option<Vec<Vec<u8>>>),
    Sized(Option<u64>),
    AclSet(bool),
}

fn world_config() -> FsScaleConfig {
    let mut cfg = FsScaleConfig::standard(CLIENTS, 0);
    cfg.shared_files = SHARED;
    cfg.value_bytes = 32;
    cfg.files_per_client = 2;
    cfg
}

fn value_for(c: u8, i: usize) -> Vec<u8> {
    vec![c, i as u8, 0x5A, (i / 256) as u8, 0xC3]
}

fn issue_time(base: Duration, i: usize) -> Duration {
    base + STEP * (i as u32 + 1)
}

/// The per-event observations plus end-of-run state for one world.
#[derive(Debug, PartialEq)]
struct WorldOutcome {
    observed: Vec<Observed>,
    lane_ends: Vec<Duration>,
    inventory: u64,
    clock_end: Duration,
}

/// Serial oracle: list order on the calling thread, each client's lane
/// raised to the event's issue time first, charging the exact crypto
/// model the async adapter charges.
fn run_serial(script: &[Event]) -> WorldOutcome {
    let cfg = world_config();
    let world: FsWorld = build_fs_world(&cfg);
    let base = world.clock.now();
    let observed = script
        .iter()
        .enumerate()
        .map(|(i, &(ec, kind, key))| {
            let c = ec as usize % CLIENTS;
            let fsc = &world.clients[c];
            let lane = fsc.afs.lane();
            let at = issue_time(base, i);
            lane.raise_to(at);
            let obs = match kind {
                FsKind::Write => {
                    let data = value_for(c as u8, i);
                    let r = fsc.volume.write_file(&shared_file(key as usize % SHARED), &data);
                    cfg.crypto.charge(lane, data.len());
                    Observed::Wrote(r.is_ok())
                }
                FsKind::Read => {
                    let r = fsc.volume.read_file(&shared_file(key as usize % SHARED)).ok();
                    cfg.crypto.charge(lane, r.as_ref().map(Vec::len).unwrap_or(0));
                    Observed::Got(r)
                }
                FsKind::Bulk => {
                    let paths = bulk_paths(key);
                    let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
                    let r = fsc.volume.read_files(&refs).ok();
                    let bytes =
                        r.as_ref().map(|vs| vs.iter().map(Vec::len).sum()).unwrap_or(0);
                    cfg.crypto.charge(lane, bytes);
                    Observed::BulkGot(r)
                }
                FsKind::Lookup => {
                    let r = fsc.volume.lookup(&shared_file(key as usize % SHARED)).ok();
                    cfg.crypto.charge(lane, 0);
                    Observed::Sized(r.map(|info| info.size))
                }
                FsKind::Acl => {
                    let rights = if key % 2 == 0 { Rights::READ } else { Rights::RW };
                    let r = fsc
                        .volume
                        .set_acl(&nexus_workloads::loadgen_fs::client_dir(c), "auditor", rights);
                    cfg.crypto.charge(lane, 0);
                    Observed::AclSet(r.is_ok())
                }
            };
            // The premise both worlds share: no op overruns the event
            // spacing, so issue order IS execution order everywhere.
            assert!(
                lane.local_now() <= at + STEP,
                "fs op {kind:?} overran STEP ({:?} past issue); raise STEP",
                lane.local_now() - at,
            );
            obs
        })
        .collect();
    WorldOutcome {
        observed,
        lane_ends: world.clients.iter().map(|fsc| fsc.afs.lane().local_now()).collect(),
        inventory: inventory_digest(&world.server),
        clock_end: world.clock.now(),
    }
}

fn bulk_paths(key: u8) -> Vec<String> {
    vec![
        shared_file(key as usize % SHARED),
        shared_file((key as usize + 1) % SHARED),
    ]
}

/// Async world: one future per mounted client over [`AsyncVolume`], on a
/// deterministic single-thread executor; events interleave across clients
/// purely by timer-wheel deadline order.
fn run_async(script: &[Event]) -> WorldOutcome {
    let cfg = world_config();
    let world: FsWorld = build_fs_world(&cfg);
    let base = world.clock.now();
    let ex = Executor::single(world.clock.clone());

    let volumes: Vec<AsyncVolume> = world
        .clients
        .iter()
        .map(|fsc| {
            AsyncVolume::new(fsc.volume.clone(), fsc.afs.lane().clone(), ex.timer(), cfg.crypto)
        })
        .collect();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let events: Vec<(usize, FsKind, u8)> = script
                .iter()
                .enumerate()
                .filter(|(_, &(ec, _, _))| ec as usize % CLIENTS == c)
                .map(|(i, &(_, kind, key))| (i, kind, key))
                .collect();
            let av = volumes[c].clone();
            ex.spawn(async move {
                let mut out = Vec::with_capacity(events.len());
                for (i, kind, key) in events {
                    av.begin_at(issue_time(base, i)).await;
                    let obs = match kind {
                        FsKind::Write => Observed::Wrote(
                            av.write_file(
                                &shared_file(key as usize % SHARED),
                                &value_for(c as u8, i),
                            )
                            .await
                            .is_ok(),
                        ),
                        FsKind::Read => Observed::Got(
                            av.read_file(&shared_file(key as usize % SHARED)).await.ok(),
                        ),
                        FsKind::Bulk => {
                            Observed::BulkGot(av.read_files(&bulk_paths(key)).await.ok())
                        }
                        FsKind::Lookup => Observed::Sized(
                            av.lookup(&shared_file(key as usize % SHARED))
                                .await
                                .ok()
                                .map(|info| info.size),
                        ),
                        FsKind::Acl => {
                            let rights = if key % 2 == 0 { Rights::READ } else { Rights::RW };
                            Observed::AclSet(
                                av.set_acl(
                                    &nexus_workloads::loadgen_fs::client_dir(c),
                                    "auditor",
                                    rights,
                                )
                                .await
                                .is_ok(),
                            )
                        }
                    };
                    out.push((i, obs));
                }
                out
            })
        })
        .collect();
    ex.run_until_idle();

    let mut observed = vec![Observed::Wrote(false); script.len()];
    for h in &handles {
        for (i, obs) in h.try_take().expect("fs client future completed") {
            observed[i] = obs;
        }
    }
    WorldOutcome {
        observed,
        lane_ends: world.clients.iter().map(|fsc| fsc.afs.lane().local_now()).collect(),
        inventory: inventory_digest(&world.server),
        clock_end: world.clock.now(),
    }
}

fn gen_event(g: &mut nexus_testkit::Gen) -> Event {
    let c = g.usize_below(CLIENTS) as u8;
    let kind = match g.usize_below(8) {
        0 | 1 => FsKind::Write,
        2 | 3 => FsKind::Read,
        4 => FsKind::Bulk,
        5 | 6 => FsKind::Lookup,
        _ => FsKind::Acl,
    };
    let key = g.usize_below(SHARED) as u8;
    (c, kind, key)
}

#[test]
fn async_fs_interleaving_matches_the_serial_oracle() {
    let runner = Runner::new("exec_fs_differential").cases(30);
    runner.run(
        |g| {
            let len = g.usize_in(1, 14);
            (0..len).map(|_| gen_event(g)).collect::<Vec<Event>>()
        },
        |script| nexus_testkit::shrink::ops(script),
        |script| {
            let serial = run_serial(script);
            let async_world = run_async(script);
            if serial != async_world {
                return Err(format!(
                    "fs worlds diverged for {script:?}:\n serial {serial:?}\n async  {async_world:?}"
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn cross_client_fs_write_then_read_is_causal_in_both_worlds() {
    // Pinned regression: client 0 rewrites shared/f1; client 1 then reads
    // it and client 2 looks it up. Both worlds must observe the new
    // bytes (and the new size) — the enclave's freshness check sees the
    // bumped metadata version, refetches, and the reader's lane pays the
    // writer-availability raise.
    let script: Vec<Event> =
        vec![(0, FsKind::Write, 1), (1, FsKind::Read, 1), (2, FsKind::Lookup, 1)];
    let serial = run_serial(&script);
    let async_world = run_async(&script);
    assert_eq!(serial, async_world);
    match &serial.observed[1] {
        Observed::Got(Some(v)) => assert_eq!(v, &value_for(0, 0)),
        other => panic!("reader missed the cross-client write: {other:?}"),
    }
    match &serial.observed[2] {
        Observed::Sized(Some(size)) => assert_eq!(*size, value_for(0, 0).len() as u64),
        other => panic!("lookup missed the new size: {other:?}"),
    }
    assert!(serial.lane_ends[1] >= serial.lane_ends[0] - STEP);
}
