//! # nexus-cryptofs-baseline
//!
//! A SiRiUS/Plutus-style **purely cryptographic** filesystem — the class of
//! system NEXUS's revocation evaluation (§VII-E, §VIII) compares against.
//!
//! Like those systems, there is no trusted hardware: every file is encrypted
//! under a per-file key (FEK), and the FEK is stored in per-reader
//! *lockboxes*, each wrapped to one reader's public key. The consequence
//! NEXUS exists to avoid follows directly: once a reader has held a FEK, it
//! must be assumed cached, so **revoking a reader forces re-encrypting the
//! whole file under a fresh FEK** and re-wrapping it for every remaining
//! reader — cost proportional to file size × sharing degree, exactly as
//! Garrison et al. measured.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use nexus_cryptofs_baseline::{CryptoFs, Identity};
//! use nexus_storage::MemBackend;
//!
//! let store = Arc::new(MemBackend::new());
//! let owner = Identity::from_seed("owen", &[1; 32]);
//! let alice = Identity::from_seed("alice", &[2; 32]);
//! let fs = CryptoFs::new(store, owner.clone());
//!
//! fs.write_file("doc.txt", b"hello", &[alice.public()]).unwrap();
//! assert_eq!(fs.read_file_as(&alice, "doc.txt").unwrap(), b"hello");
//!
//! // Revocation: the whole file is re-encrypted.
//! let cost = fs.revoke_reader("doc.txt", "alice").unwrap();
//! assert_eq!(cost.file_bytes_reencrypted, 5);
//! assert!(fs.read_file_as(&alice, "doc.txt").is_err());
//! ```

use std::cell::RefCell;
use std::sync::Arc;

use nexus_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use nexus_crypto::gcm::{AesGcm, TAG_LEN};
use nexus_crypto::hmac::hkdf;
use nexus_crypto::rng::{OsRandom, SecureRandom};
use nexus_crypto::x25519;
use nexus_storage::StorageBackend;

/// Errors from the baseline filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoFsError {
    /// Object missing on the store.
    NotFound(String),
    /// The caller holds no lockbox for this file.
    NoAccess(String),
    /// Decryption or signature verification failed.
    Integrity(String),
    /// The underlying store failed.
    Storage(String),
    /// Metadata failed to parse.
    Malformed(String),
}

impl std::fmt::Display for CryptoFsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoFsError::NotFound(p) => write!(f, "not found: {p}"),
            CryptoFsError::NoAccess(who) => write!(f, "no lockbox for {who}"),
            CryptoFsError::Integrity(w) => write!(f, "integrity failure: {w}"),
            CryptoFsError::Storage(w) => write!(f, "storage failure: {w}"),
            CryptoFsError::Malformed(w) => write!(f, "malformed metadata: {w}"),
        }
    }
}

impl std::error::Error for CryptoFsError {}

type Result<T> = std::result::Result<T, CryptoFsError>;

/// A user identity: X25519 keys for lockboxes, Ed25519 for signatures.
#[derive(Clone)]
pub struct Identity {
    name: String,
    dh_secret: [u8; 32],
    signing: SigningKey,
}

impl std::fmt::Debug for Identity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Identity").field("name", &self.name).finish()
    }
}

/// The public half of an [`Identity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicIdentity {
    /// User name.
    pub name: String,
    /// X25519 public key (lockbox wrapping).
    pub dh_public: [u8; 32],
    /// Ed25519 public key (signature verification).
    pub verify: VerifyingKey,
}

impl Identity {
    /// Deterministic identity for tests and benchmarks.
    pub fn from_seed(name: &str, seed: &[u8; 32]) -> Identity {
        let expanded = hkdf(b"cryptofs-id", seed, name.as_bytes(), 64);
        let mut dh_secret = [0u8; 32];
        dh_secret.copy_from_slice(&expanded[..32]);
        let mut sig_seed = [0u8; 32];
        sig_seed.copy_from_slice(&expanded[32..]);
        Identity { name: name.to_string(), dh_secret, signing: SigningKey::from_seed(&sig_seed) }
    }

    /// Fresh random identity.
    pub fn generate(name: &str, rng: &mut dyn SecureRandom) -> Identity {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        Identity::from_seed(name, &seed)
    }

    /// The name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shareable public half.
    pub fn public(&self) -> PublicIdentity {
        PublicIdentity {
            name: self.name.clone(),
            dh_public: x25519::x25519_public_key(&self.dh_secret),
            verify: self.signing.verifying_key(),
        }
    }
}

/// A FEK wrapped to one reader.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Lockbox {
    reader: String,
    reader_dh_public: [u8; 32],
    ephemeral_public: [u8; 32],
    nonce: [u8; 12],
    wrapped_fek: Vec<u8>,
}

/// Per-file metadata: lockboxes plus the owner's signature.
#[derive(Debug, Clone)]
struct FileMeta {
    data_object: String,
    file_nonce: [u8; 12],
    lockboxes: Vec<Lockbox>,
}

/// What a revocation cost (the quantity §VII-E compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RevocationCost {
    /// Plaintext bytes re-encrypted under the fresh FEK.
    pub file_bytes_reencrypted: u64,
    /// Metadata bytes rewritten (lockboxes + signature).
    pub metadata_bytes: u64,
    /// Lockboxes re-wrapped for remaining readers.
    pub lockboxes_rewrapped: u64,
}

/// The pure-cryptographic filesystem.
pub struct CryptoFs {
    store: Arc<dyn StorageBackend>,
    owner: Identity,
}

impl std::fmt::Debug for CryptoFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CryptoFs").field("owner", &self.owner.name).finish()
    }
}

fn meta_path(path: &str) -> String {
    format!("cfs-meta-{path}")
}

fn data_path(path: &str) -> String {
    format!("cfs-data-{path}")
}

fn lockbox_key(shared: &[u8; 32], eph: &[u8; 32], reader: &[u8; 32]) -> [u8; 32] {
    let mut info = Vec::with_capacity(64);
    info.extend_from_slice(eph);
    info.extend_from_slice(reader);
    hkdf(b"cryptofs-lockbox", shared, &info, 32).try_into().unwrap()
}

/// Plaintext bytes per chunk of the baseline's chunked data format.
const CHUNK_SIZE: usize = 1 << 20;

/// Per-chunk nonce: the file nonce with the chunk index folded into the
/// low 32 bits, so every chunk of a (FEK, file nonce) pair is sealed under
/// a distinct nonce while metadata still stores a single 12-byte value.
fn chunk_nonce(file_nonce: &[u8; 12], index: u64) -> [u8; 12] {
    let mut nonce = *file_nonce;
    for (b, c) in nonce[8..].iter_mut().zip((index as u32).to_be_bytes()) {
        *b ^= c;
    }
    nonce
}

/// Per-chunk AAD binding the chunk to its path, position, and file size,
/// so chunks cannot be dropped, duplicated, or swapped between positions.
fn chunk_aad(path: &str, index: u64, total_size: u64) -> Vec<u8> {
    let mut aad = path.as_bytes().to_vec();
    aad.extend_from_slice(&index.to_be_bytes());
    aad.extend_from_slice(&total_size.to_be_bytes());
    aad
}

/// Seals `data` as concatenated `chunk_size`-plaintext chunks, fanning the
/// per-chunk AES-GCM over the worker pool. An empty file is one empty
/// sealed chunk (a bare tag), so even zero-length contents are
/// authenticated. Output is byte-identical at every worker count: chunk
/// nonces are derived, not drawn, and results concatenate in index order.
fn seal_file(gcm: &AesGcm, file_nonce: &[u8; 12], path: &str, data: &[u8], chunk_size: usize) -> Vec<u8> {
    let chunks: Vec<&[u8]> =
        if data.is_empty() { vec![&[][..]] } else { data.chunks(chunk_size).collect() };
    let total = data.len() as u64;
    let sealed = nexus_pool::global().par_map_indexed(&chunks, |idx, chunk| {
        let mut out = Vec::new();
        gcm.seal_to(&chunk_nonce(file_nonce, idx as u64), &chunk_aad(path, idx as u64, total), chunk, &mut out);
        out
    });
    let mut ciphertext = Vec::with_capacity(data.len() + sealed.len() * TAG_LEN);
    for piece in &sealed {
        ciphertext.extend_from_slice(piece);
    }
    ciphertext
}

/// Opens ciphertext produced by [`seal_file`]. Chunk boundaries are
/// recovered from length arithmetic: every chunk but the last carries
/// exactly `chunk_size` plaintext bytes.
fn open_file(
    gcm: &AesGcm,
    file_nonce: &[u8; 12],
    path: &str,
    ciphertext: &[u8],
    chunk_size: usize,
) -> Result<Vec<u8>> {
    let per = chunk_size + TAG_LEN;
    let mut pieces: Vec<&[u8]> = Vec::with_capacity(ciphertext.len() / per + 1);
    let mut rest = ciphertext;
    while rest.len() > per {
        let (head, tail) = rest.split_at(per);
        pieces.push(head);
        rest = tail;
    }
    if rest.len() < TAG_LEN {
        return Err(CryptoFsError::Integrity("data object truncated".into()));
    }
    pieces.push(rest);
    let total = (ciphertext.len() - pieces.len() * TAG_LEN) as u64;
    let opened = nexus_pool::global().par_map_indexed(&pieces, |idx, piece| {
        let mut plain = Vec::new();
        gcm.open_to(&chunk_nonce(file_nonce, idx as u64), &chunk_aad(path, idx as u64, total), piece, &mut plain)
            .map(|()| plain)
            .map_err(|_| CryptoFsError::Integrity("file authentication failed".into()))
    });
    let mut out = Vec::with_capacity(total as usize);
    // Index order, so the surfaced error is the lowest failing chunk.
    for piece in opened {
        out.extend_from_slice(&piece?);
    }
    Ok(out)
}

/// Draws random bytes from a thread-local CSPRNG. The data path fans file
/// chunks out over worker threads, so a shared `Mutex<OsRandom>` on the
/// filesystem handle would serialize workers on the lock; instead every
/// draw (FEK, nonces, ephemeral secrets — all per-file or per-reader, all
/// outside the chunk loop) uses its calling thread's own generator.
fn fill(dest: &mut [u8]) {
    thread_local! {
        static RNG: RefCell<OsRandom> = RefCell::new(OsRandom::new());
    }
    RNG.with(|rng| rng.borrow_mut().fill(dest));
}

impl CryptoFs {
    /// Creates a filesystem handle acting as `owner` over `store`.
    pub fn new(store: Arc<dyn StorageBackend>, owner: Identity) -> CryptoFs {
        CryptoFs { store, owner }
    }

    /// The underlying store (for benchmarks inspecting traffic).
    pub fn store(&self) -> &Arc<dyn StorageBackend> {
        &self.store
    }

    fn fill(&self, dest: &mut [u8]) {
        fill(dest);
    }

    /// Encrypts and stores `data` at `path`, readable by the owner plus
    /// `readers`.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn write_file(&self, path: &str, data: &[u8], readers: &[PublicIdentity]) -> Result<()> {
        let mut fek = [0u8; 32];
        self.fill(&mut fek);
        self.write_with_fek(path, data, readers, fek)
    }

    fn write_with_fek(
        &self,
        path: &str,
        data: &[u8],
        readers: &[PublicIdentity],
        fek: [u8; 32],
    ) -> Result<()> {
        let mut file_nonce = [0u8; 12];
        self.fill(&mut file_nonce);
        let gcm = AesGcm::new_256(&fek);
        let ciphertext = seal_file(&gcm, &file_nonce, path, data, CHUNK_SIZE);
        self.store
            .put(&data_path(path), &ciphertext)
            .map_err(|e| CryptoFsError::Storage(e.to_string()))?;

        let owner_public = self.owner.public();
        let mut all_readers: Vec<PublicIdentity> = vec![owner_public];
        all_readers.extend(readers.iter().cloned());
        let mut lockboxes = Vec::with_capacity(all_readers.len());
        for reader in &all_readers {
            let mut eph_secret = [0u8; 32];
            self.fill(&mut eph_secret);
            let eph_public = x25519::x25519_public_key(&eph_secret);
            let shared = x25519::x25519(&eph_secret, &reader.dh_public);
            let key = lockbox_key(&shared, &eph_public, &reader.dh_public);
            let mut nonce = [0u8; 12];
            self.fill(&mut nonce);
            let wrapped_fek = AesGcm::new_256(&key).seal(&nonce, reader.name.as_bytes(), &fek);
            lockboxes.push(Lockbox {
                reader: reader.name.clone(),
                reader_dh_public: reader.dh_public,
                ephemeral_public: eph_public,
                nonce,
                wrapped_fek,
            });
        }
        let meta = self.encode_meta(path, &file_nonce, &lockboxes);
        self.store
            .put(&meta_path(path), &meta)
            .map_err(|e| CryptoFsError::Storage(e.to_string()))?;
        Ok(())
    }

    fn encode_meta(&self, path: &str, file_nonce: &[u8; 12], lockboxes: &[Lockbox]) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(file_nonce);
        body.extend_from_slice(&(lockboxes.len() as u32).to_le_bytes());
        for lb in lockboxes {
            let name = lb.reader.as_bytes();
            body.extend_from_slice(&(name.len() as u32).to_le_bytes());
            body.extend_from_slice(name);
            body.extend_from_slice(&lb.reader_dh_public);
            body.extend_from_slice(&lb.ephemeral_public);
            body.extend_from_slice(&lb.nonce);
            body.extend_from_slice(&(lb.wrapped_fek.len() as u32).to_le_bytes());
            body.extend_from_slice(&lb.wrapped_fek);
        }
        let mut signed = path.as_bytes().to_vec();
        signed.extend_from_slice(&body);
        let signature = self.owner.signing.sign(&signed);
        body.extend_from_slice(&signature.to_bytes());
        body
    }

    fn decode_meta(&self, path: &str, bytes: &[u8]) -> Result<FileMeta> {
        if bytes.len() < 12 + 4 + 64 {
            return Err(CryptoFsError::Malformed("metadata too short".into()));
        }
        let (body, sig_bytes) = bytes.split_at(bytes.len() - 64);
        let signature = Signature::from_bytes(sig_bytes)
            .map_err(|_| CryptoFsError::Malformed("bad signature bytes".into()))?;
        let mut signed = path.as_bytes().to_vec();
        signed.extend_from_slice(body);
        self.owner
            .signing
            .verifying_key()
            .verify(&signed, &signature)
            .map_err(|_| CryptoFsError::Integrity("owner signature invalid".into()))?;

        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
            let out = body
                .get(*off..*off + n)
                .ok_or_else(|| CryptoFsError::Malformed("truncated".into()))?;
            *off += n;
            Ok(out)
        };
        let file_nonce: [u8; 12] = take(&mut off, 12)?.try_into().unwrap();
        let count = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
        if count > 100_000 {
            return Err(CryptoFsError::Malformed("absurd lockbox count".into()));
        }
        let mut lockboxes = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
            let reader = String::from_utf8(take(&mut off, name_len)?.to_vec())
                .map_err(|_| CryptoFsError::Malformed("bad utf-8".into()))?;
            let reader_dh_public: [u8; 32] = take(&mut off, 32)?.try_into().unwrap();
            let ephemeral_public: [u8; 32] = take(&mut off, 32)?.try_into().unwrap();
            let nonce: [u8; 12] = take(&mut off, 12)?.try_into().unwrap();
            let fek_len = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
            let wrapped_fek = take(&mut off, fek_len)?.to_vec();
            lockboxes.push(Lockbox {
                reader,
                reader_dh_public,
                ephemeral_public,
                nonce,
                wrapped_fek,
            });
        }
        Ok(FileMeta { data_object: data_path(path), file_nonce, lockboxes })
    }

    fn load_meta(&self, path: &str) -> Result<FileMeta> {
        let bytes = self
            .store
            .get(&meta_path(path))
            .map_err(|_| CryptoFsError::NotFound(path.to_string()))?;
        self.decode_meta(path, &bytes)
    }

    fn unwrap_fek(&self, meta: &FileMeta, identity: &Identity) -> Result<[u8; 32]> {
        let lb = meta
            .lockboxes
            .iter()
            .find(|lb| lb.reader == identity.name)
            .ok_or_else(|| CryptoFsError::NoAccess(identity.name.clone()))?;
        let shared = x25519::x25519(&identity.dh_secret, &lb.ephemeral_public);
        let key = lockbox_key(&shared, &lb.ephemeral_public, &lb.reader_dh_public);
        let fek = AesGcm::new_256(&key)
            .open(&lb.nonce, identity.name.as_bytes(), &lb.wrapped_fek)
            .map_err(|_| CryptoFsError::Integrity("lockbox unwrap failed".into()))?;
        fek.try_into()
            .map_err(|_| CryptoFsError::Malformed("fek length".into()))
    }

    /// Reads `path` as the owner.
    ///
    /// # Errors
    ///
    /// [`CryptoFsError::NotFound`] or integrity failures.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        self.read_file_as(&self.owner, path)
    }

    /// Reads `path` as an arbitrary identity holding a lockbox.
    ///
    /// # Errors
    ///
    /// [`CryptoFsError::NoAccess`] when no lockbox exists for the identity.
    pub fn read_file_as(&self, identity: &Identity, path: &str) -> Result<Vec<u8>> {
        let meta = self.load_meta(path)?;
        let fek = self.unwrap_fek(&meta, identity)?;
        let ciphertext = self
            .store
            .get(&meta.data_object)
            .map_err(|_| CryptoFsError::NotFound(path.to_string()))?;
        open_file(&AesGcm::new_256(&fek), &meta.file_nonce, path, &ciphertext, CHUNK_SIZE)
    }

    /// Readers (including the owner) currently holding lockboxes on `path`.
    pub fn readers(&self, path: &str) -> Result<Vec<String>> {
        Ok(self.load_meta(path)?.lockboxes.iter().map(|l| l.reader.clone()).collect())
    }

    /// Grants `reader` access: cheap — adds one lockbox, no re-encryption.
    ///
    /// # Errors
    ///
    /// Lookup/storage failures.
    pub fn grant_reader(&self, path: &str, reader: &PublicIdentity) -> Result<()> {
        let meta = self.load_meta(path)?;
        let fek = self.unwrap_fek(&meta, &self.owner)?;
        let mut eph_secret = [0u8; 32];
        self.fill(&mut eph_secret);
        let eph_public = x25519::x25519_public_key(&eph_secret);
        let shared = x25519::x25519(&eph_secret, &reader.dh_public);
        let key = lockbox_key(&shared, &eph_public, &reader.dh_public);
        let mut nonce = [0u8; 12];
        self.fill(&mut nonce);
        let wrapped_fek = AesGcm::new_256(&key).seal(&nonce, reader.name.as_bytes(), &fek);
        let mut lockboxes = meta.lockboxes;
        lockboxes.retain(|lb| lb.reader != reader.name);
        lockboxes.push(Lockbox {
            reader: reader.name.clone(),
            reader_dh_public: reader.dh_public,
            ephemeral_public: eph_public,
            nonce,
            wrapped_fek,
        });
        let bytes = self.encode_meta(path, &meta.file_nonce, &lockboxes);
        self.store
            .put(&meta_path(path), &bytes)
            .map_err(|e| CryptoFsError::Storage(e.to_string()))?;
        Ok(())
    }

    /// Revokes `reader`: the expensive path. Decrypts the file, re-encrypts
    /// it under a fresh FEK, and re-wraps for every remaining reader.
    ///
    /// # Errors
    ///
    /// Lookup/storage failures.
    pub fn revoke_reader(&self, path: &str, reader: &str) -> Result<RevocationCost> {
        let meta = self.load_meta(path)?;
        let plaintext = self.read_file(path)?;

        let remaining: Vec<PublicIdentity> = meta
            .lockboxes
            .iter()
            .filter(|lb| lb.reader != reader && lb.reader != self.owner.name)
            .map(|lb| PublicIdentity {
                name: lb.reader.clone(),
                dh_public: lb.reader_dh_public,
                // Signature keys are not needed for lockbox wrapping.
                verify: self.owner.signing.verifying_key(),
            })
            .collect();

        let mut fek = [0u8; 32];
        self.fill(&mut fek);
        self.write_with_fek(path, &plaintext, &remaining, fek)?;
        let meta_bytes = self
            .store
            .get(&meta_path(path))
            .map_err(|e| CryptoFsError::Storage(e.to_string()))?;
        Ok(RevocationCost {
            file_bytes_reencrypted: plaintext.len() as u64,
            metadata_bytes: meta_bytes.len() as u64,
            lockboxes_rewrapped: remaining.len() as u64 + 1,
        })
    }

    /// Deletes `path`.
    ///
    /// # Errors
    ///
    /// [`CryptoFsError::NotFound`] when absent.
    pub fn remove(&self, path: &str) -> Result<()> {
        self.store
            .delete(&meta_path(path))
            .map_err(|_| CryptoFsError::NotFound(path.to_string()))?;
        let _ = self.store.delete(&data_path(path));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_storage::MemBackend;

    fn setup() -> (CryptoFs, Identity, Identity) {
        let store = Arc::new(MemBackend::new());
        let owner = Identity::from_seed("owen", &[1; 32]);
        let alice = Identity::from_seed("alice", &[2; 32]);
        (CryptoFs::new(store, owner.clone()), owner, alice)
    }

    #[test]
    fn owner_roundtrip() {
        let (fs, _, _) = setup();
        fs.write_file("f", b"data", &[]).unwrap();
        assert_eq!(fs.read_file("f").unwrap(), b"data");
    }

    #[test]
    fn reader_with_lockbox_can_read() {
        let (fs, _, alice) = setup();
        fs.write_file("f", b"data", &[alice.public()]).unwrap();
        assert_eq!(fs.read_file_as(&alice, "f").unwrap(), b"data");
    }

    #[test]
    fn outsider_cannot_read() {
        let (fs, _, _) = setup();
        let eve = Identity::from_seed("eve", &[9; 32]);
        fs.write_file("f", b"data", &[]).unwrap();
        assert!(matches!(fs.read_file_as(&eve, "f"), Err(CryptoFsError::NoAccess(_))));
    }

    #[test]
    fn grant_is_cheap_and_works() {
        let (fs, _, alice) = setup();
        fs.write_file("f", b"data", &[]).unwrap();
        let writes_before = fs.store().stats().bytes_written;
        fs.grant_reader("f", &alice.public()).unwrap();
        let grant_bytes = fs.store().stats().bytes_written - writes_before;
        assert!(grant_bytes < 1024, "grant rewrites only metadata: {grant_bytes}");
        assert_eq!(fs.read_file_as(&alice, "f").unwrap(), b"data");
        assert_eq!(fs.readers("f").unwrap().len(), 2);
    }

    #[test]
    fn revocation_reencrypts_whole_file() {
        let (fs, _, alice) = setup();
        let bob = Identity::from_seed("bob", &[3; 32]);
        let data = vec![7u8; 100_000];
        fs.write_file("f", &data, &[alice.public(), bob.public()]).unwrap();
        let cost = fs.revoke_reader("f", "alice").unwrap();
        assert_eq!(cost.file_bytes_reencrypted, 100_000);
        assert_eq!(cost.lockboxes_rewrapped, 2, "owner + bob");
        assert!(fs.read_file_as(&alice, "f").is_err());
        assert_eq!(fs.read_file_as(&bob, "f").unwrap(), data);
        assert_eq!(fs.read_file("f").unwrap(), data);
    }

    #[test]
    fn tampered_metadata_detected() {
        let (fs, _, _) = setup();
        fs.write_file("f", b"data", &[]).unwrap();
        let store = fs.store().clone();
        let mut meta = store.get(&meta_path("f")).unwrap();
        meta[20] ^= 1;
        store.put(&meta_path("f"), &meta).unwrap();
        assert!(matches!(fs.read_file("f"), Err(CryptoFsError::Integrity(_))));
    }

    #[test]
    fn tampered_data_detected() {
        let (fs, _, _) = setup();
        fs.write_file("f", b"data", &[]).unwrap();
        let store = fs.store().clone();
        let mut data = store.get(&data_path("f")).unwrap();
        data[0] ^= 1;
        store.put(&data_path("f"), &data).unwrap();
        assert!(matches!(fs.read_file("f"), Err(CryptoFsError::Integrity(_))));
    }

    #[test]
    fn chunked_format_roundtrips_at_boundaries() {
        let gcm = AesGcm::new_256(&[0x4e; 32]);
        let nonce = [6u8; 12];
        // Small chunk size so boundary cases stay cheap; the public path
        // uses the same code with CHUNK_SIZE.
        let chunk = 64usize;
        for len in [0usize, 1, 63, 64, 65, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = seal_file(&gcm, &nonce, "p", &data, chunk);
            let expect_chunks = if len == 0 { 1 } else { len.div_ceil(chunk) };
            assert_eq!(ct.len(), len + expect_chunks * TAG_LEN, "len={len}");
            assert_eq!(open_file(&gcm, &nonce, "p", &ct, chunk).unwrap(), data, "len={len}");
        }
    }

    #[test]
    fn chunked_format_rejects_chunk_swaps_and_tampering() {
        let gcm = AesGcm::new_256(&[0x4e; 32]);
        let nonce = [6u8; 12];
        let chunk = 64usize;
        let per = chunk + TAG_LEN;
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let ct = seal_file(&gcm, &nonce, "p", &data, chunk);

        // Swapping two full chunks must fail: position is in the AAD.
        let mut swapped = ct.clone();
        swapped.copy_within(per..2 * per, 0);
        swapped[per..2 * per].copy_from_slice(&ct[..per]);
        assert!(open_file(&gcm, &nonce, "p", &swapped, chunk).is_err());

        // Truncating to a whole-chunk boundary must fail: size is in the AAD.
        assert!(open_file(&gcm, &nonce, "p", &ct[..per * 2], chunk).is_err());

        // Flipping one bit in the middle chunk must fail.
        let mut flipped = ct.clone();
        flipped[per + 3] ^= 1;
        assert!(open_file(&gcm, &nonce, "p", &flipped, chunk).is_err());

        // A different path must fail.
        assert!(open_file(&gcm, &nonce, "q", &ct, chunk).is_err());
    }

    #[test]
    fn multi_chunk_file_roundtrips_through_public_api() {
        let (fs, _, alice) = setup();
        // Crosses a CHUNK_SIZE boundary so the public path exercises >1 chunk.
        let data: Vec<u8> = (0..CHUNK_SIZE + 4096).map(|i| (i % 251) as u8).collect();
        fs.write_file("big", &data, &[alice.public()]).unwrap();
        assert_eq!(fs.read_file("big").unwrap(), data);
        assert_eq!(fs.read_file_as(&alice, "big").unwrap(), data);
        let cost = fs.revoke_reader("big", "alice").unwrap();
        assert_eq!(cost.file_bytes_reencrypted, data.len() as u64);
        assert!(fs.read_file_as(&alice, "big").is_err());
        assert_eq!(fs.read_file("big").unwrap(), data);
    }

    #[test]
    fn empty_file_is_authenticated() {
        let (fs, _, _) = setup();
        fs.write_file("empty", b"", &[]).unwrap();
        assert_eq!(fs.read_file("empty").unwrap(), b"");
        // Even an empty file carries a tag; corrupting it is detected.
        let store = fs.store().clone();
        let mut data = store.get(&data_path("empty")).unwrap();
        assert_eq!(data.len(), TAG_LEN);
        data[0] ^= 1;
        store.put(&data_path("empty"), &data).unwrap();
        assert!(matches!(fs.read_file("empty"), Err(CryptoFsError::Integrity(_))));
    }

    #[test]
    fn remove_deletes_both_objects() {
        let (fs, _, _) = setup();
        fs.write_file("f", b"data", &[]).unwrap();
        fs.remove("f").unwrap();
        assert!(matches!(fs.read_file("f"), Err(CryptoFsError::NotFound(_))));
        assert!(fs.remove("f").is_err());
    }
}
